#include <gtest/gtest.h>

#include <algorithm>

#include "lightpath/fabric.hpp"
#include "routing/decentralized.hpp"
#include "routing/planner.hpp"
#include "routing/repair.hpp"
#include "routing/router.hpp"

namespace lp::routing {
namespace {

using fabric::Direction;
using fabric::Fabric;
using fabric::FabricConfig;
using fabric::GlobalTile;
using fabric::TileCoord;
using fabric::TileId;
using fabric::Wafer;
using fabric::WaferParams;

TEST(Router, TrivialSelfRoute) {
  const Wafer wafer;
  const auto hops = find_route(wafer, 3, 3);
  ASSERT_TRUE(hops.has_value());
  EXPECT_TRUE(hops->empty());
}

TEST(Router, ShortestPathLength) {
  const Wafer wafer;
  const auto a = wafer.tile_at(TileCoord{0, 0});
  const auto b = wafer.tile_at(TileCoord{3, 5});
  const auto hops = find_route(wafer, a, b);
  ASSERT_TRUE(hops.has_value());
  EXPECT_EQ(hops->size(), 8u);
}

TEST(Router, PrefersFewerTurns) {
  const Wafer wafer;
  const auto a = wafer.tile_at(TileCoord{1, 0});
  const auto b = wafer.tile_at(TileCoord{1, 7});
  const auto hops = find_route(wafer, a, b);
  ASSERT_TRUE(hops.has_value());
  for (Direction d : *hops) EXPECT_EQ(d, Direction::kEast) << "straight line, no turns";
}

TEST(Router, RoutesAroundFullEdge) {
  WaferParams params;
  params.lanes_per_edge = 4;
  Wafer wafer{params};
  const auto a = wafer.tile_at(TileCoord{1, 0});
  const auto b = wafer.tile_at(TileCoord{1, 2});
  // Saturate the direct east edge out of (1,1).
  ASSERT_TRUE(wafer.reserve_lanes(wafer.tile_at(TileCoord{1, 1}), Direction::kEast, 4));
  const auto hops = find_route(wafer, a, b);
  ASSERT_TRUE(hops.has_value());
  EXPECT_GT(hops->size(), 2u) << "must detour";
  // Verify the path is feasible.
  EXPECT_TRUE(wafer.path_has_capacity(a, *hops, 1));
}

TEST(Router, ReportsInfeasible) {
  WaferParams params;
  params.lanes_per_edge = 2;
  Wafer wafer{params};
  // Cut tile (0,0) off entirely.
  const auto corner = wafer.tile_at(TileCoord{0, 0});
  ASSERT_TRUE(wafer.reserve_lanes(corner, Direction::kEast, 2));
  ASSERT_TRUE(wafer.reserve_lanes(corner, Direction::kSouth, 2));
  EXPECT_FALSE(find_route(wafer, corner, wafer.tile_at(TileCoord{2, 2})).has_value());
}

TEST(Router, RespectsLaneCount) {
  WaferParams params;
  params.lanes_per_edge = 4;
  Wafer wafer{params};
  const auto a = wafer.tile_at(TileCoord{0, 0});
  const auto b = wafer.tile_at(TileCoord{0, 1});
  RouteOptions opts;
  opts.lanes = 8;  // more than any edge has
  EXPECT_FALSE(find_route(wafer, a, b, opts).has_value());
}

TEST(Planner, PlacesRingDemands) {
  Fabric fab;
  CircuitPlanner planner{fab};
  std::vector<Demand> demands;
  for (fabric::TileId t = 0; t < 8; ++t) {
    demands.push_back(Demand{GlobalTile{0, t}, GlobalTile{0, (t + 1) % 8}, 4});
  }
  const auto report = planner.place_all(demands);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.placed.size(), 8u);
  EXPECT_GT(report.mzis_programmed, 0u);
  EXPECT_GT(report.reconfig_latency.to_micros(), 3.5);
  planner.release_all(report);
  EXPECT_EQ(fab.active_circuits(), 0u);
}

TEST(Planner, ReportsFailuresWithoutAbandoningRest) {
  FabricConfig config;
  config.wafer.lanes_per_edge = 8192;
  Fabric fab{config};
  CircuitPlanner planner{fab};
  // Tile 0 has only 16 Tx lambdas: three 8-lambda demands from it cannot all fit.
  std::vector<Demand> demands{
      Demand{GlobalTile{0, 0}, GlobalTile{0, 1}, 8},
      Demand{GlobalTile{0, 0}, GlobalTile{0, 2}, 8},
      Demand{GlobalTile{0, 0}, GlobalTile{0, 3}, 8},
      Demand{GlobalTile{0, 4}, GlobalTile{0, 5}, 8},
  };
  const auto report = planner.place_all(demands);
  EXPECT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.placed.size(), 3u);
  planner.release_all(report);
}

TEST(Planner, LaneScarcityTriggersDetours) {
  FabricConfig config;
  config.wafer.lanes_per_edge = 4;
  Fabric fab{config};
  CircuitPlanner planner{fab};
  // Many parallel demands across the same row exhaust the straight lanes.
  std::vector<Demand> demands;
  for (int i = 0; i < 3; ++i) {
    demands.push_back(Demand{GlobalTile{0, fab.wafer(0).tile_at(TileCoord{1, 0})},
                             GlobalTile{0, fab.wafer(0).tile_at(TileCoord{1, 7})}, 4});
  }
  const auto report = planner.place_all(demands);
  // First takes the straight row; the others detour through rows 0/2.
  EXPECT_TRUE(report.complete());
  unsigned detoured = 0;
  for (const auto& placed : report.placed) {
    const fabric::Circuit* c = fab.circuit(placed.id);
    ASSERT_NE(c, nullptr);
    if (c->turn_count() > 0) ++detoured;
  }
  EXPECT_GE(detoured, 2u) << "two of three circuits must leave the straight row";
  planner.release_all(report);
}

TEST(Decentralized, AllSucceedWithAmpleLanes) {
  Fabric fab;
  std::vector<Demand> demands;
  for (fabric::TileId t = 0; t < 16; ++t) {
    demands.push_back(Demand{GlobalTile{0, t}, GlobalTile{0, 31 - t}, 2});
  }
  const auto report = run_decentralized_setup(fab, demands);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.per_demand.size(), 16u);
  for (const auto& o : report.per_demand) {
    EXPECT_TRUE(o.success);
    EXPECT_GT(o.messages, 0u);
  }
  EXPECT_GT(report.makespan.to_micros(), 3.5) << "settle is included";
  // The real fabric was never touched.
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), 0u);
}

TEST(Decentralized, ScarcityCausesRetriesOrFailures) {
  FabricConfig config;
  config.wafer.lanes_per_edge = 2;
  Fabric fab{config};
  std::vector<Demand> demands;
  // Everyone crosses the middle of row 0.
  for (int i = 0; i < 6; ++i) {
    demands.push_back(Demand{GlobalTile{0, 0}, GlobalTile{0, 7}, 1});
  }
  const auto report = run_decentralized_setup(fab, demands);
  unsigned retries = 0;
  for (const auto& o : report.per_demand) retries += o.retries;
  EXPECT_GT(retries + report.failures, 0u);
}

TEST(Decentralized, DeterministicUnderSeed) {
  Fabric fab;
  std::vector<Demand> demands{Demand{GlobalTile{0, 0}, GlobalTile{0, 9}, 1},
                              Demand{GlobalTile{0, 1}, GlobalTile{0, 8}, 1}};
  const auto a = run_decentralized_setup(fab, demands);
  const auto b = run_decentralized_setup(fab, demands);
  ASSERT_EQ(a.per_demand.size(), b.per_demand.size());
  for (std::size_t i = 0; i < a.per_demand.size(); ++i) {
    EXPECT_EQ(a.per_demand[i].messages, b.per_demand[i].messages);
    EXPECT_DOUBLE_EQ(a.per_demand[i].completion.to_seconds(),
                     b.per_demand[i].completion.to_seconds());
  }
}

TEST(Decentralized, CentralizedLatencyScalesWithDemands) {
  Fabric fab;
  const Duration few = centralized_setup_latency(fab, 10);
  const Duration many = centralized_setup_latency(fab, 1000);
  EXPECT_LT(few.to_seconds(), many.to_seconds());
}

TEST(Repair, SameWaferRepairCompletes) {
  Fabric fab;
  RepairRequest req;
  req.spare = GlobalTile{0, 12};
  req.neighbors = {GlobalTile{0, 3}, GlobalTile{0, 5}, GlobalTile{0, 20}};
  req.wavelengths = 2;
  const auto plan = repair_with_spare(fab, req);
  EXPECT_TRUE(plan.complete);
  EXPECT_EQ(plan.circuits.size(), 6u);  // both directions per neighbor
  EXPECT_EQ(plan.fibers_used, 0u);
  EXPECT_GT(plan.reconfig_latency.to_micros(), 3.5);
}

TEST(Repair, CrossWaferUsesFibers) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 16);
  RepairRequest req;
  req.spare = GlobalTile{1, 4};
  req.neighbors = {GlobalTile{0, 3}};
  req.wavelengths = 1;
  const auto plan = repair_with_spare(fab, req);
  EXPECT_TRUE(plan.complete);
  EXPECT_EQ(plan.fibers_used, 2u);
}

TEST(Repair, FailureRollsBackCleanly) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};  // no fiber links at all
  RepairRequest req;
  req.spare = GlobalTile{1, 4};
  req.neighbors = {GlobalTile{0, 3}};
  const auto plan = repair_with_spare(fab, req);
  EXPECT_FALSE(plan.complete);
  EXPECT_TRUE(plan.circuits.empty());
  EXPECT_EQ(fab.active_circuits(), 0u);
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), 0u);
}

TEST(Repair, ChooseSparePrefersSameWafer) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  const std::vector<GlobalTile> candidates{GlobalTile{1, 0}, GlobalTile{0, 30},
                                           GlobalTile{0, 2}};
  const std::vector<GlobalTile> neighbors{GlobalTile{0, 1}, GlobalTile{0, 3}};
  const auto choice = choose_spare(fab, candidates, neighbors);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice.value(), 2u) << "same-wafer, closest candidate wins";
}

TEST(Repair, ChooseSpareEmptyFails) {
  Fabric fab;
  EXPECT_FALSE(choose_spare(fab, {}, {GlobalTile{0, 1}}).ok());
}

TEST(Repair, ChooseSpareManhattanBreaksFiberTies) {
  Fabric fab;
  const Wafer& w = fab.wafer(0);
  // All candidates same-wafer (fiber tie at 0); the closer one wins even
  // when listed later.
  const std::vector<GlobalTile> candidates{
      GlobalTile{0, w.tile_at(TileCoord{3, 7})}, GlobalTile{0, w.tile_at(TileCoord{1, 2})}};
  const std::vector<GlobalTile> neighbors{GlobalTile{0, w.tile_at(TileCoord{1, 1})}};
  const auto choice = choose_spare(fab, candidates, neighbors);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice.value(), 1u) << "Manhattan distance breaks the fiber tie";
}

TEST(Repair, ChooseSpareExactTieFirstCandidateWins) {
  Fabric fab;
  const Wafer& w = fab.wafer(0);
  // (0,1) and (1,0) are both 1 hop from (0,0): fibers and distance tie, so
  // the first listed candidate must win (deterministic repair plans).
  const std::vector<GlobalTile> candidates{
      GlobalTile{0, w.tile_at(TileCoord{0, 1})}, GlobalTile{0, w.tile_at(TileCoord{1, 0})}};
  const std::vector<GlobalTile> neighbors{GlobalTile{0, w.tile_at(TileCoord{0, 0})}};
  const auto choice = choose_spare(fab, candidates, neighbors);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice.value(), 0u);
}

// Regression: a repair that fails mid-plan (first neighbor pair fits, the
// second exhausts the spare's Rx pool) must leave the fabric exactly as it
// found it — no leaked circuits, lanes, or wavelength reservations.
TEST(Repair, PartialFailureLeavesNoLeakedReservations) {
  Fabric fab;
  RepairRequest req;
  req.spare = GlobalTile{0, 12};
  req.neighbors = {GlobalTile{0, 3}, GlobalTile{0, 20}};
  req.wavelengths = 16;  // first neighbor consumes all 16 Rx at the spare
  const auto plan = repair_with_spare(fab, req);
  EXPECT_FALSE(plan.complete);
  EXPECT_TRUE(plan.circuits.empty());
  EXPECT_EQ(fab.active_circuits(), 0u);
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), 0u);
  for (const TileId t : {TileId{3}, TileId{12}, TileId{20}}) {
    EXPECT_EQ(fab.wafer(0).tile(t).tx_used(), 0u) << "tile " << t;
    EXPECT_EQ(fab.wafer(0).tile(t).rx_used(), 0u) << "tile " << t;
  }
}

// --- escalate_repair: the graceful-degradation ladder ----------------------

TEST(Escalate, RetuneRecoversLaserLossWithHeadroom) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;  // tile 0 has 14 free Tx: plenty to re-lock onto
  const auto out = escalate_repair(fab, victim, {});
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRetune);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRetune)], 1u);
  ASSERT_EQ(out.circuits.size(), 1u);
  EXPECT_EQ(out.circuits.front(), id.value()) << "retune keeps the circuit";
  EXPECT_EQ(fab.active_circuits(), 1u);
  EXPECT_GT(out.latency.to_seconds(), 0.0);
}

TEST(Escalate, RerouteAroundBlockedPath) {
  Fabric fab;
  Wafer& w = fab.wafer(0);
  const TileId a = w.tile_at(TileCoord{0, 0});
  const TileId b = w.tile_at(TileCoord{0, 2});
  const auto id = fab.connect(GlobalTile{0, a}, GlobalTile{0, b}, 2);
  ASSERT_TRUE(id.ok());
  // Block the straight east-east path as a stuck switch would (both directed
  // edges of the first hop quarantined).
  ASSERT_TRUE(w.reserve_lanes(a, Direction::kEast, w.lanes_free(a, Direction::kEast)));
  const TileId mid = *w.neighbor(a, Direction::kEast);
  ASSERT_TRUE(w.reserve_lanes(mid, Direction::kWest, w.lanes_free(mid, Direction::kWest)));

  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  const auto out = escalate_repair(fab, victim, {});
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kReroute);
  EXPECT_EQ(fab.active_circuits(), 1u) << "victim replaced, not duplicated";
  ASSERT_EQ(out.circuits.size(), 1u);
  EXPECT_NE(out.circuits.front(), id.value());
  const fabric::Circuit* c = fab.circuit(out.circuits.front());
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->waveguide_hop_count(), 2u) << "detour around the blocked edge";
}

TEST(Escalate, RespareReplacesDeadEndpoint) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dst_dead = true;  // reroute cannot help; endpoint must move
  EscalationOptions opts;
  opts.spare_candidates = {GlobalTile{0, 11}};
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRespare);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kReroute)], 0u)
      << "dead endpoint skips the reroute rung";
  EXPECT_EQ(out.circuits.size(), 2u) << "anchor<->spare, both directions";
  EXPECT_EQ(fab.circuit(id.value()), nullptr) << "victim torn down";
  EXPECT_EQ(fab.active_circuits(), 2u);
}

TEST(Escalate, ElectricalDetourWhenOpticalRungsExhausted) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  EscalationOptions opts;
  opts.spare_candidates = {GlobalTile{0, 11}};
  opts.electrical_feasible = true;
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kElectricalDetour);
  EXPECT_GT(out.attempts[rung_index(RepairRung::kReroute)], 0u);
  EXPECT_GT(out.attempts[rung_index(RepairRung::kRespare)], 0u);
  EXPECT_EQ(fab.active_circuits(), 0u) << "traffic left the optical domain";
  EXPECT_GE(out.latency, opts.electrical_detour_latency);
}

TEST(Escalate, RackMigrationIsTheLastResortAndCannotFail) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  EscalationOptions opts;
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRackMigration);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRackMigration)], 1u);
  EXPECT_GE(out.latency, opts.migration_latency);
  EXPECT_EQ(fab.active_circuits(), 0u);
}

// A rung whose replacement is rejected mid-attempt must roll it back fully:
// after every optical rung fails, the fabric differs from the initial state
// by exactly the victim's teardown — nothing else leaked.
TEST(Escalate, FailedRungsRollBackToExactState) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 16);
  (void)fab.connect(GlobalTile{0, 16}, GlobalTile{0, 19}, 2);  // bystander
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{1, 4}, 2);
  ASSERT_TRUE(id.ok());

  Fabric expected = fab;  // the only sanctioned change: victim teardown
  expected.disconnect(id.value());

  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  EscalationOptions opts;
  opts.spare_candidates = {GlobalTile{0, 27}, GlobalTile{1, 20}};
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_EQ(out.rung, RepairRung::kRackMigration);
  EXPECT_GT(out.attempts[rung_index(RepairRung::kReroute)], 0u);
  EXPECT_GT(out.attempts[rung_index(RepairRung::kRespare)], 0u);

  EXPECT_EQ(fab.active_circuits(), expected.active_circuits());
  for (fabric::WaferId w = 0; w < fab.wafer_count(); ++w) {
    EXPECT_EQ(fab.wafer(w).total_lanes_used(), expected.wafer(w).total_lanes_used());
    for (fabric::TileId t = 0; t < fab.wafer(w).tile_count(); ++t) {
      EXPECT_EQ(fab.wafer(w).tile(t).tx_used(), expected.wafer(w).tile(t).tx_used());
      EXPECT_EQ(fab.wafer(w).tile(t).rx_used(), expected.wafer(w).tile(t).rx_used());
    }
  }
  for (std::size_t i = 0; i < fab.fiber_links().size(); ++i) {
    EXPECT_EQ(fab.fiber_links()[i].used, expected.fiber_links()[i].used);
  }
}

TEST(Escalate, UnknownCircuitIsNotRepairable) {
  Fabric fab;
  DegradedCircuit victim;
  victim.id = 12345;
  const auto out = escalate_repair(fab, victim, {});
  EXPECT_FALSE(out.recovered);
  EXPECT_FALSE(out.budget_exhausted) << "plan failure, not a timeout";
  for (const auto a : out.attempts) EXPECT_EQ(a, 0u);
}

// --- escalate_repair: wall-clock budget ------------------------------------

TEST(Escalate, BudgetExhaustionLeavesVictimEstablished) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  EscalationOptions opts;
  // Every replacement is rejected, so each reroute/respare attempt burns
  // probe latency; a sub-attempt budget exhausts after the first charge.
  opts.spare_candidates = {GlobalTile{0, 11}};
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  opts.budget = Duration::micros(0.001);
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_FALSE(out.recovered);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_GE(out.latency, opts.budget) << "the started attempt is charged in full";
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRackMigration)], 0u)
      << "exhaustion gates even the last-resort rung";
  EXPECT_NE(fab.circuit(id.value()), nullptr)
      << "exhausted climb leaves the victim for a later retry";
  EXPECT_EQ(fab.active_circuits(), 1u) << "no leaked replacements";
}

TEST(Escalate, ZeroBudgetMeansUnlimited) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  EscalationOptions opts;
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  ASSERT_EQ(opts.budget, Duration::zero());
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered) << "unlimited budget always reaches rung 5";
  EXPECT_EQ(out.rung, RepairRung::kRackMigration);
  EXPECT_FALSE(out.budget_exhausted);
}

TEST(Planner, PlaceAllIsInvariantUnderInputPermutation) {
  // Regression: equal-Manhattan-distance demands used to keep their input
  // order through the stable sort, so permuting the input permuted the
  // placement order — and, under contention, which demands won the lanes.
  // plan_order now breaks distance ties by ascending (src, dst,
  // wavelengths), making the plan a function of the demand *set*.
  fabric::WaferParams params;
  params.rows = 4;
  params.cols = 8;
  params.lanes_per_edge = 2;  // scarce: placement order decides winners
  FabricConfig config;
  config.wafer = params;

  // All demands span the same Manhattan distance (3), crossing paths.
  const std::vector<Demand> demands{
      {{0, 0}, {0, 3}, 2},  {{0, 8}, {0, 11}, 2}, {{0, 3}, {0, 0}, 2},
      {{0, 11}, {0, 8}, 2}, {{0, 1}, {0, 25}, 2}, {{0, 25}, {0, 1}, 2},
  };
  std::vector<Demand> permuted = demands;
  std::reverse(permuted.begin(), permuted.end());

  Fabric fab_a{config};
  Fabric fab_b{config};
  const PlanReport a = CircuitPlanner{fab_a}.place_all(demands);
  const PlanReport b = CircuitPlanner{fab_b}.place_all(permuted);

  ASSERT_EQ(a.placed.size(), b.placed.size());
  for (std::size_t i = 0; i < a.placed.size(); ++i) {
    EXPECT_EQ(a.placed[i].demand, b.placed[i].demand) << "index " << i;
  }
  ASSERT_EQ(a.failed.size(), b.failed.size());
  for (std::size_t i = 0; i < a.failed.size(); ++i) {
    EXPECT_EQ(a.failed[i], b.failed[i]) << "index " << i;
  }
  EXPECT_EQ(a.mzis_programmed, b.mzis_programmed);
  EXPECT_EQ(fab_a.ledger_digest(), fab_b.ledger_digest());
}

TEST(Planner, PlanOrderIsATotalOrder) {
  const Fabric fab;
  std::vector<Demand> demands{
      {{0, 5}, {0, 6}, 1}, {{0, 2}, {0, 1}, 1}, {{0, 1}, {0, 2}, 2},
      {{0, 1}, {0, 2}, 1}, {{0, 0}, {0, 7}, 1},
  };
  const auto ordered = plan_order(fab, demands);
  // Longest first...
  ASSERT_EQ(ordered.size(), 5u);
  EXPECT_EQ(ordered[0].src.tile, 0u);
  EXPECT_EQ(ordered[0].dst.tile, 7u);
  // ...then distance-1 ties in ascending (src, dst, wavelengths) order.
  EXPECT_EQ(ordered[1], (Demand{{0, 1}, {0, 2}, 1}));
  EXPECT_EQ(ordered[2], (Demand{{0, 1}, {0, 2}, 2}));
  EXPECT_EQ(ordered[3], (Demand{{0, 2}, {0, 1}, 1}));
  EXPECT_EQ(ordered[4], (Demand{{0, 5}, {0, 6}, 1}));
}

TEST(Escalate, GenerousBudgetDoesNotChangeTheOutcome) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;
  EscalationOptions opts;
  opts.budget = Duration::seconds(1.0);
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRetune);
  EXPECT_FALSE(out.budget_exhausted);
  EXPECT_LT(out.latency, opts.budget);
}

// --- Retry backoff, transient failures, and budget accounting (gray) -------

TEST(Backoff, DelayScheduleIsDeterministicAndJittered) {
  RetryBackoff plain;
  plain.base = Duration::micros(50.0);
  EXPECT_EQ(plain.delay(0), Duration::zero()) << "retry 0 is the first attempt";
  EXPECT_EQ(plain.delay(1), Duration::micros(50.0));
  EXPECT_EQ(plain.delay(2), Duration::micros(100.0));
  EXPECT_EQ(plain.delay(3), Duration::micros(200.0));

  RetryBackoff off;  // zero base disables waits entirely
  off.jitter_fraction = 0.5;
  EXPECT_EQ(off.delay(5), Duration::zero());

  RetryBackoff jittered = plain;
  jittered.jitter_fraction = 0.5;
  jittered.seed = 7;
  double want = 50e-6;
  for (std::uint64_t k = 1; k <= 4; ++k, want *= 2.0) {
    const double got = jittered.delay(k).to_seconds();
    EXPECT_GE(got, want * 0.5) << "retry " << k;
    EXPECT_LE(got, want * 1.5) << "retry " << k;
    EXPECT_EQ(jittered.delay(k), jittered.delay(k))
        << "jitter must be a pure function of (seed, retry)";
  }
  RetryBackoff other = jittered;
  other.seed = 8;
  EXPECT_NE(other.delay(1), jittered.delay(1))
      << "different seeds should draw different jitter";
}

TEST(Escalate, AllTransientClimbReportsTransientFailedAndKeepsTheVictim) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  const std::uint64_t epoch_before = fab.epoch();
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;

  EscalationOptions opts;
  opts.backoff.base = Duration::micros(50.0);
  opts.transient_failure = [](RepairRung, std::uint32_t) { return true; };
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_FALSE(out.recovered);
  EXPECT_FALSE(out.budget_exhausted);
  EXPECT_TRUE(out.transient_failed);
  EXPECT_GT(out.transient_failures, 0u);
  EXPECT_GT(out.backoff_latency.to_seconds(), 0.0);
  EXPECT_GE(out.latency, out.backoff_latency);
  EXPECT_EQ(fab.active_circuits(), 1u) << "victim must stay established";
  EXPECT_EQ(fab.epoch(), epoch_before)
      << "an all-transient climb must not mutate the fabric";
}

TEST(Escalate, TransientRetryWithinARungThenSucceeds) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;

  EscalationOptions opts;
  opts.backoff.base = Duration::micros(50.0);
  // First programming attempt of the climb settles out; the retry locks.
  opts.transient_failure = [](RepairRung, std::uint32_t attempt) {
    return attempt == 0;
  };
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRetune);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRetune)], 2u);
  EXPECT_EQ(out.transient_failures, 1u);
  EXPECT_EQ(out.backoff_latency, opts.backoff.delay(1))
      << "exactly one wait, before the successful retry";
}

TEST(Escalate, RungTimeoutAbandonsASlowRung) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;

  // Every attempt is transient and each retry waits 1 ms: with a 100 us
  // rung cap the retune rung is abandoned after its first attempt instead
  // of burning retries_per_rung attempts in place.
  EscalationOptions capped;
  capped.retries_per_rung = 8;
  capped.backoff.base = Duration::millis(1.0);
  capped.rung_timeout = Duration::micros(100.0);
  capped.transient_failure = [](RepairRung r, std::uint32_t) {
    return r == RepairRung::kRetune;
  };
  const auto out = escalate_repair(fab, victim, capped);
  EXPECT_TRUE(out.recovered);
  EXPECT_NE(out.rung, RepairRung::kRetune) << "the climb must escalate past retune";
  EXPECT_LE(out.attempts[rung_index(RepairRung::kRetune)], 2u)
      << "the cap, not retries_per_rung, bounds the rung";
}

// Regression (budget-exhausted accounting audit): a rung the budget gates
// off before entry must charge neither attempts nor latency -- the outcome
// stops exactly at the spend recorded when the gate closed.
TEST(Escalate, BudgetGatedRungChargesNoAttemptsOrLatency) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;  // retune is skipped; reroute would be next

  // One failed-validation reroute attempt costs exactly one settle probe.
  // Grant precisely that: the climb charges the first attempt in full, and
  // every later rung is gated off with zero attempts and zero latency.
  const Duration one_attempt = fab.reconfig().settle_latency();
  ASSERT_GT(one_attempt.to_seconds(), 0.0);

  EscalationOptions opts;
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  opts.electrical_feasible = true;
  opts.budget = one_attempt;  // gate closes exactly after the first attempt
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_FALSE(out.recovered);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kReroute)], 1u);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRespare)], 0u);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kElectricalDetour)], 0u)
      << "a rung never entered must count zero attempts";
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRackMigration)], 0u);
  EXPECT_EQ(out.latency, one_attempt)
      << "no rolled-back latency from rungs the budget gated off";
}

TEST(Escalate, EmptySpareListAndInfeasibleDetourCountZeroAttempts) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  DegradedCircuit victim;
  victim.id = id.value();
  victim.src_dead = true;  // only respare / the electrical rungs apply

  EscalationOptions opts;  // no spare candidates, detour infeasible
  const auto out = escalate_repair(fab, victim, opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, RepairRung::kRackMigration);
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRespare)], 0u)
      << "no spare was ever selected, so no attempt was made";
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kElectricalDetour)], 0u)
      << "an infeasible detour is a gate, not an attempt";
  EXPECT_EQ(out.attempts[rung_index(RepairRung::kRackMigration)], 1u);
}

}  // namespace
}  // namespace lp::routing
