// Tests of the core layer: PhotonicRack mapping, BandwidthManager
// redirection, and the blast-radius policy comparison of §4.2.
#include <gtest/gtest.h>

#include "core/bandwidth_manager.hpp"
#include "core/blast_radius.hpp"
#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"

namespace lp::core {
namespace {

using topo::ChipState;
using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::SliceAllocator;
using topo::TpuCluster;
using topo::TpuId;

class RackFixture : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  PhotonicRack rack_{cluster_, 0};
};

TEST_F(RackFixture, ChipTileMappingRoundTrips) {
  for (TpuId chip = 0; chip < cluster_.chips_per_rack(); ++chip) {
    const auto tile = rack_.tile_of(chip);
    EXPECT_EQ(rack_.chip_of(tile), chip);
  }
  // First 32 chips on wafer 0, rest on wafer 1.
  EXPECT_EQ(rack_.tile_of(0).wafer, 0u);
  EXPECT_EQ(rack_.tile_of(31).wafer, 0u);
  EXPECT_EQ(rack_.tile_of(32).wafer, 1u);
  EXPECT_EQ(rack_.tile_of(63).wafer, 1u);
}

TEST_F(RackFixture, MappingWorksForNonZeroRack) {
  PhotonicRack rack3{cluster_, 3};
  const TpuId chip = 3 * 64 + 10;
  EXPECT_EQ(rack3.chip_of(rack3.tile_of(chip)), chip);
}

TEST_F(RackFixture, ChipBandwidthIs16Lambdas) {
  // 16 x 224 Gbps = 3584 Gbps = 448 GB/s of steerable egress.
  EXPECT_NEAR(rack_.chip_bandwidth().to_gbps(), 3584.0, 1e-6);
  EXPECT_NEAR(rack_.per_wavelength_rate().to_gbps(), 224.0, 1e-9);
}

TEST_F(RackFixture, FiberBundlesAttached) {
  EXPECT_EQ(rack_.fabric().fiber_links().size(), 8u);
  // Cross-wafer connect works out of the box.
  auto id = rack_.fabric().connect(rack_.tile_of(0), rack_.tile_of(63), 1);
  EXPECT_TRUE(id.ok()) << id.error().message;
}

class BandwidthManagerFixture : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  PhotonicRack rack_{cluster_, 0};
  BandwidthManager manager_{rack_};
};

TEST_F(BandwidthManagerFixture, ProvisionSlice1SnakeRing) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  ASSERT_EQ(plan.stages.size(), 1u);
  auto stage = manager_.provision_stage(s, plan, 0);
  ASSERT_TRUE(stage.ok()) << stage.error().message;
  // One stage -> all 16 lambdas per edge: the full redirected bandwidth.
  EXPECT_EQ(stage.value().wavelengths, 16u);
  EXPECT_NEAR(stage.value().edge_rate.to_gbps(), 3584.0, 1e-6);
  EXPECT_EQ(stage.value().circuits.size(), 8u);  // 8 ring edges
  EXPECT_GT(stage.value().reconfig_latency.to_micros(), 3.5);
  manager_.release_stage(stage.value());
  EXPECT_EQ(rack_.fabric().active_circuits(), 0u);
}

TEST_F(BandwidthManagerFixture, ProvisionAllSlice3SplitsLambdas) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  ASSERT_EQ(plan.stages.size(), 2u);
  auto stages = manager_.provision_all(s, plan);
  ASSERT_TRUE(stages.ok()) << stages.error().message;
  ASSERT_EQ(stages.value().size(), 2u);
  for (const auto& st : stages.value()) {
    EXPECT_EQ(st.wavelengths, 8u) << "16 lambdas split across 2 stages";
    EXPECT_NEAR(st.edge_rate.to_gbps(), 8 * 224.0, 1e-6);
    manager_.release_stage(st);
  }
}

TEST_F(BandwidthManagerFixture, ProvisionedRateMatchesCostModel) {
  // The cost model assumes stage bandwidth B/n_stages with B the chip's
  // steerable bandwidth; the fabric must actually deliver that.
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  coll::CostParams params;
  params.chip_bandwidth = rack_.chip_bandwidth();
  auto stages = manager_.provision_all(s, plan);
  ASSERT_TRUE(stages.ok());
  const Bandwidth expected = params.chip_bandwidth / 2.0;
  for (const auto& st : stages.value()) {
    EXPECT_NEAR(st.edge_rate.to_gbps(), expected.to_gbps(), 1e-6);
    manager_.release_stage(st);
  }
}

TEST_F(BandwidthManagerFixture, PerStageFullUsesAllLambdas) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  auto stage =
      manager_.provision_stage(s, plan, 0, coll::RedirectStrategy::kPerStageFull);
  ASSERT_TRUE(stage.ok());
  EXPECT_EQ(stage.value().wavelengths, 16u);
  manager_.release_stage(stage.value());
}

class BlastRadiusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure-6a-like setup: Slice-4 and Slice-3 as in Figure 5, Slice-1 at
    // y in {0,1} z=3, and the former Slice-2 region (y in {2,3}, z=3) kept
    // free so spares exist.
    ASSERT_TRUE(alloc_.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}).ok());
    auto s3 = alloc_.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
    ASSERT_TRUE(s3.ok());
    slice3_ = s3.value();
    ASSERT_TRUE(alloc_.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}).ok());
  }

  TpuCluster cluster_;
  SliceAllocator alloc_{cluster_};
  topo::SliceId slice3_{-1};
};

TEST_F(BlastRadiusFixture, BrokenRingNeighborsFound) {
  const TpuId failed = cluster_.chip_at(0, Coord{{1, 1, 2}});
  const auto neighbors =
      broken_ring_neighbors(cluster_, *alloc_.slice(slice3_), failed);
  // X ring: (0,1,2) and (2,1,2); Y ring: (1,0,2) and (1,2,2).
  EXPECT_EQ(neighbors.size(), 4u);
  for (TpuId n : neighbors) {
    EXPECT_EQ(alloc_.owner(n), slice3_);
  }
}

TEST_F(BlastRadiusFixture, ElectricalRepairBlockedByAllocatedNeighborhood) {
  // Fail a chip at y=0: its Y-ring neighbor at y=3... all free chips sit at
  // z=3, y in {2,3}; paths from the y=0/y=1 neighbors must transit
  // allocated chips.  Expect infeasibility (Figure 6a).
  const TpuId failed = cluster_.chip_at(0, Coord{{1, 0, 2}});
  const auto attempt = attempt_electrical_repair(cluster_, alloc_, failed);
  EXPECT_FALSE(attempt.feasible)
      << "in-place electrical repair should congest, per Figure 6a";
}

TEST_F(BlastRadiusFixture, RackMigrationBlastRadiusIsWholeRack) {
  const TpuId failed = cluster_.chip_at(0, Coord{{1, 1, 2}});
  const auto impact =
      assess_failure(cluster_, alloc_, failed, FailurePolicy::kRackMigration);
  EXPECT_TRUE(impact.feasible);
  EXPECT_EQ(impact.blast_radius_chips, 64);
  EXPECT_EQ(impact.jobs_interrupted, 1);
  EXPECT_GT(impact.recovery_time.to_seconds(), 1.0);
}

TEST_F(BlastRadiusFixture, OpticalRepairShrinksBlastRadiusToServer) {
  PhotonicRack rack{cluster_, 0};
  const TpuId failed = cluster_.chip_at(0, Coord{{1, 1, 2}});
  const auto impact = assess_failure(cluster_, alloc_, failed,
                                     FailurePolicy::kOpticalRepair, {}, &rack);
  EXPECT_TRUE(impact.feasible);
  EXPECT_EQ(impact.blast_radius_chips, 4) << "one server, not one rack";
  EXPECT_TRUE(impact.congestion_free);
  EXPECT_LT(impact.recovery_time.to_millis(), 1.0)
      << "microsecond-scale reconfiguration";
}

TEST_F(BlastRadiusFixture, OpticalRepairInfeasibleWithoutSpares) {
  // Fill the spare region; no free chips remain.
  ASSERT_TRUE(alloc_.allocate_at(0, Coord{{0, 2, 3}}, Shape{{4, 2, 1}}).ok());
  PhotonicRack rack{cluster_, 0};
  const TpuId failed = cluster_.chip_at(0, Coord{{1, 1, 2}});
  const auto impact = assess_failure(cluster_, alloc_, failed,
                                     FailurePolicy::kOpticalRepair, {}, &rack);
  EXPECT_FALSE(impact.feasible);
}

TEST_F(BlastRadiusFixture, FailureMarksChipFailed) {
  const TpuId failed = cluster_.chip_at(0, Coord{{0, 0, 0}});
  (void)assess_failure(cluster_, alloc_, failed, FailurePolicy::kRackMigration);
  EXPECT_EQ(cluster_.state(failed), ChipState::kFailed);
}

TEST(BlastRadius, ElectricalRepairFeasibleWhenAdjacent) {
  // A lone small slice with plenty of free space around it: in-place
  // electrical repair should succeed.
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto id = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 2, 1}});
  ASSERT_TRUE(id.ok());
  const TpuId failed = cluster.chip_at(0, Coord{{0, 0, 0}});
  const auto attempt = attempt_electrical_repair(cluster, alloc, failed);
  EXPECT_TRUE(attempt.feasible);
  EXPECT_GE(attempt.paths.size(), 1u);
}

}  // namespace
}  // namespace lp::core
