#include <gtest/gtest.h>

#include "topo/switched.hpp"

namespace lp::topo {
namespace {

TEST(Switched, QuietSwitchIsPortBound) {
  SwitchedServerParams params;
  params.port_bandwidth = Bandwidth::gBps(450);
  params.aggregate_bandwidth = Bandwidth::gBps(450 * 8 * 0.75);
  const SwitchedServer sw{params};
  // 5 flows: core share = 2700/5 = 540 > 450 -> port-bound.
  EXPECT_NEAR(sw.effective_flow_rate(5, Bandwidth::zero()).to_gBps(), 450.0, 1e-9);
  // 8 flows: core share = 2700/8 = 337.5 < 450 -> core-bound.
  EXPECT_NEAR(sw.effective_flow_rate(8, Bandwidth::zero()).to_gBps(), 337.5, 1e-9);
}

TEST(Switched, BackgroundLoadStealsBandwidth) {
  const SwitchedServer sw;
  const Bandwidth quiet = sw.effective_flow_rate(8, Bandwidth::zero());
  const Bandwidth loaded =
      sw.effective_flow_rate(8, sw.params().aggregate_bandwidth * 0.5);
  EXPECT_LT(loaded.to_gBps(), quiet.to_gBps());
  // Fully saturated core starves flows entirely.
  const Bandwidth starved =
      sw.effective_flow_rate(8, sw.params().aggregate_bandwidth);
  EXPECT_TRUE(starved.is_zero());
}

TEST(Switched, RingBetaMatchesClosedForm) {
  SwitchedServerParams params;
  params.port_bandwidth = Bandwidth::gBps(400);
  params.aggregate_bandwidth = Bandwidth::gBps(400 * 16);  // never core-bound
  const SwitchedServer sw{params};
  const DataSize n = DataSize::mib(256);
  const Duration beta = sw.ring_collective_beta(n, 8, Bandwidth::zero());
  EXPECT_NEAR(beta.to_seconds(),
              transfer_time(n * (7.0 / 8.0), Bandwidth::gBps(400)).to_seconds(), 1e-12);
}

TEST(Switched, DegenerateCases) {
  const SwitchedServer sw;
  EXPECT_EQ(sw.ring_collective_beta(DataSize::mib(1), 1, Bandwidth::zero()),
            Duration::zero());
  EXPECT_TRUE(sw.effective_flow_rate(0, Bandwidth::zero()).is_zero());
  EXPECT_FALSE(sw.ring_collective_beta(DataSize::mib(1), 8,
                                       sw.params().aggregate_bandwidth * 2.0)
                   .is_finite());
}

TEST(Switched, AllToAllSlowerThanRingPerByte) {
  const SwitchedServer sw;
  const DataSize n = DataSize::mib(64);
  // All-to-all moves the full n per chip; the ring only (p-1)/p of it.
  EXPECT_GT(sw.all_to_all_beta(n, 8, Bandwidth::zero()).to_seconds(),
            sw.ring_collective_beta(n, 8, Bandwidth::zero()).to_seconds());
}

}  // namespace
}  // namespace lp::topo
