// Tests for the open-loop inference-serving simulator (serve/).
//
// The load-bearing properties: request conservation (every offered request
// is accounted for exactly once), determinism (same params -> bit-identical
// report, at any sweep thread count), saturation behavior (attainment
// collapses past capacity instead of latency hiding in a closed loop), and
// fault churn reaching the latency tail.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/serving_sim.hpp"
#include "serve/workload.hpp"

namespace lp::serve {
namespace {

/// Small, fast configuration: 4 replicas x 4 tiles on a 4x4 wafer, a few
/// milliseconds of traffic.  Faults off unless the test wants them.
ServingParams small_params() {
  ServingParams p;
  p.replicas = 4;
  p.tiles_per_replica = 4;
  p.batch_capacity = 16;
  p.traffic.arrival_rate = 50e3;
  p.horizon = Duration::millis(5.0);
  p.drain = Duration::millis(20.0);
  p.mtbf_hours = 0.0;
  p.host.max_peers = 4;
  p.expert_peers = 2;
  return p;
}

TEST(Workload, GeneratorIsDeterministicAndBounded) {
  TrafficParams tp;
  tp.arrival_rate = 1e6;
  RequestGenerator a{tp, 16, 42};
  RequestGenerator b{tp, 16, 42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_interarrival(), b.next_interarrival());
    const RequestSpec ra = a.next_request();
    const RequestSpec rb = b.next_request();
    EXPECT_EQ(ra.prefill_tokens, rb.prefill_tokens);
    EXPECT_EQ(ra.decode_tokens, rb.decode_tokens);
    EXPECT_EQ(ra.replica, rb.replica);
    EXPECT_EQ(ra.migrate, rb.migrate);
    ASSERT_GE(ra.prefill_tokens, 1u);
    ASSERT_LE(ra.prefill_tokens, tp.prefill_tokens_max);
    ASSERT_GE(ra.decode_tokens, 1u);
    ASSERT_LE(ra.decode_tokens, tp.decode_tokens_max);
    ASSERT_LT(ra.replica, 16u);
    if (ra.migrate) {
      EXPECT_NE(ra.prefill_replica, ra.replica);
    }
  }
}

TEST(Serving, RequestConservation) {
  const ServingReport r = run_serving(small_params());
  ASSERT_GT(r.offered, 100u);
  // Every offered request completed, was abandoned, or is still in flight.
  EXPECT_EQ(r.offered, r.completed + r.abandoned + r.in_flight_at_end);
  // Faults are off: nothing should be abandoned, and a generous drain
  // window should let everything finish.
  EXPECT_EQ(r.abandoned, 0u);
  EXPECT_EQ(r.in_flight_at_end, 0u);
  EXPECT_EQ(r.met_slo, r.offered);  // far below capacity, no faults
  EXPECT_GT(r.p50, Duration::zero());
  EXPECT_GE(r.p999, r.p99);
  EXPECT_GE(r.p99, r.p50);
  EXPECT_GE(r.max_latency, r.p999);
}

TEST(Serving, RunIsBitIdentical) {
  const ServingReport a = run_serving(small_params());
  const ServingReport b = run_serving(small_params());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p999, b.p999);
}

TEST(Serving, SweepBitIdenticalAcrossThreadCounts) {
  ServingSweepConfig cfg;
  cfg.base = small_params();
  cfg.arrival_rates = {20e3, 50e3, 100e3, 200e3};

  std::vector<std::uint64_t> digests[3];
  const unsigned threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    cfg.threads = threads[i];
    const ServingSweepReport rep = run_serving_sweep(cfg);
    ASSERT_EQ(rep.points.size(), cfg.arrival_rates.size());
    for (const ServingReport& p : rep.points) digests[i].push_back(p.digest);
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(Serving, SaturationCollapsesAttainment) {
  ServingParams p = small_params();
  // Capacity ~ replicas x batch / (service_rounds x round_time); push an
  // order of magnitude past it.
  ServingParams hot = p;
  hot.traffic.arrival_rate = 5e6;
  hot.drain = Duration::millis(5.0);  // don't let an infinite drain bail it out

  const ServingReport cold = run_serving(p);
  const ServingReport sat = run_serving(hot);
  EXPECT_GT(cold.slo_attainment(), 0.99);
  EXPECT_LT(sat.slo_attainment(), 0.5);
  // Open loop: the backlog is real, not hidden.
  EXPECT_GT(sat.in_flight_at_end, 0u);
  EXPECT_GT(sat.p999, cold.p999);
}

TEST(Serving, ExpertTrafficMostlyHitsCircuitCache) {
  const ServingReport r = run_serving(small_params());
  ASSERT_GT(r.expert_sends, 0u);
  // expert_peers < max_peers: after warmup the rotation lives in the LRU.
  EXPECT_GT(r.host.hit_rate(), 0.9);
}

TEST(Serving, FaultChurnReachesTheTail) {
  ServingParams quiet = small_params();
  quiet.traffic.arrival_rate = 100e3;
  quiet.horizon = Duration::millis(20.0);

  ServingParams faulty = quiet;
  faulty.mtbf_hours = 2e-5;  // ~220 strikes/s fleet-wide: several in 20 ms

  const ServingReport a = run_serving(quiet);
  const ServingReport b = run_serving(faulty);
  ASSERT_GT(b.fault_events, 0u);
  EXPECT_GT(b.detections, 0u);
  EXPECT_GT(b.churn_flushes, 0u);
  // Churn costs something: more reconfigurations through the host stack,
  // and conservation still holds (abandoned requests are accounted).
  EXPECT_GE(b.host.misses, a.host.misses);
  EXPECT_EQ(b.offered, b.completed + b.abandoned + b.in_flight_at_end);
}

TEST(Serving, FaultRunsAreDeterministic) {
  ServingParams p = small_params();
  p.mtbf_hours = 2e-5;
  p.horizon = Duration::millis(20.0);
  const ServingReport a = run_serving(p);
  const ServingReport b = run_serving(p);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.repair_failures, b.repair_failures);
}

TEST(Serving, DefaultWaferIsResizedToFitReplicas) {
  // The default FabricConfig wafer is 4x8; run_serving must reshape it to
  // replicas x tiles_per_replica without the caller doing anything.
  ServingParams p = small_params();
  p.replicas = 2;
  p.tiles_per_replica = 2;
  p.traffic.arrival_rate = 10e3;
  p.horizon = Duration::millis(2.0);
  const ServingReport r = run_serving(p);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.offered, r.completed + r.abandoned + r.in_flight_at_end);
}

}  // namespace
}  // namespace lp::serve
