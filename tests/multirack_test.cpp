// Tests of the OCS layer and multi-rack joined tori (Figure 5a / 6b
// substrate).
#include <gtest/gtest.h>

#include "collective/congestion.hpp"
#include "collective/cost_model.hpp"
#include "topo/multirack.hpp"
#include "topo/ocs.hpp"
#include "topo/slice.hpp"

namespace lp::topo {
namespace {

bool core_attempt(TpuCluster& cluster, const SliceAllocator& alloc, TpuId failed);

TEST(Ocs, PortAccounting) {
  OcsBank bank{OcsParams{}, 2};
  EXPECT_EQ(bank.total_ports(), 272u);
  EXPECT_TRUE(bank.reserve(100));
  EXPECT_EQ(bank.ports_free(), 172u);
  EXPECT_FALSE(bank.reserve(200));
  EXPECT_EQ(bank.ports_used(), 100u) << "failed reserve must not consume";
  bank.release(50);
  EXPECT_EQ(bank.ports_used(), 50u);
  bank.release(1000);  // clamps
  EXPECT_EQ(bank.ports_used(), 0u);
}

TEST(Ocs, ReconfigurationLatencyIsMilliseconds) {
  OcsBank bank;
  const Duration d = bank.reconfigure();
  EXPECT_GT(d.to_millis(), 1.0) << "MEMS OCS reconfig is ms-scale, vs 3.7 us MZIs";
  EXPECT_EQ(bank.reconfigurations(), 1u);
}

TEST(JoinedTorus, JoinsTwoRacksAlongZ) {
  OcsBank bank;
  const auto joined = JoinedTorus::join(ClusterConfig{}, 2, 2, bank);
  ASSERT_TRUE(joined.ok()) << joined.error().message;
  const auto& j = joined.value();
  EXPECT_EQ(j.cluster().config().rack_shape, (Shape{{4, 4, 8}}));
  EXPECT_EQ(j.cluster().chips_per_rack(), 128);
  EXPECT_EQ(j.racks_joined(), 2);
  // 16 face links per seam x 2 seams.
  EXPECT_EQ(j.ocs_ports_used(), 32u);
  EXPECT_EQ(bank.ports_used(), 32u);
  EXPECT_GT(j.join_latency().to_millis(), 1.0);
}

TEST(JoinedTorus, RejectsBadArguments) {
  OcsBank bank;
  EXPECT_FALSE(JoinedTorus::join(ClusterConfig{}, 1, 2, bank).ok());
  EXPECT_FALSE(JoinedTorus::join(ClusterConfig{}, 2, 5, bank).ok());
}

TEST(JoinedTorus, FailsWhenOcsExhausted) {
  OcsBank bank{OcsParams{}, 0};  // zero switches, zero ports
  EXPECT_FALSE(JoinedTorus::join(ClusterConfig{}, 2, 2, bank).ok());
}

TEST(JoinedTorus, PhysicalRackMapping) {
  OcsBank bank;
  const auto j = JoinedTorus::join(ClusterConfig{}, 4, 2, bank);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().physical_rack(Coord{{0, 0, 0}}), 0);
  EXPECT_EQ(j.value().physical_rack(Coord{{0, 0, 3}}), 0);
  EXPECT_EQ(j.value().physical_rack(Coord{{0, 0, 4}}), 1);
  EXPECT_EQ(j.value().physical_rack(Coord{{0, 0, 15}}), 3);
}

TEST(JoinedTorus, OcsLinkDetection) {
  OcsBank bank;
  const auto joined = JoinedTorus::join(ClusterConfig{}, 2, 2, bank);
  ASSERT_TRUE(joined.ok());
  const auto& j = joined.value();
  const auto& cluster = j.cluster();
  // z=3 -> z=4 crosses the rack seam.
  const TpuId seam = cluster.chip_at(0, Coord{{0, 0, 3}});
  EXPECT_TRUE(j.is_ocs_link(DirectedLink{seam, 2, +1}));
  // z=1 -> z=2 stays within rack 0.
  const TpuId inner = cluster.chip_at(0, Coord{{0, 0, 1}});
  EXPECT_FALSE(j.is_ocs_link(DirectedLink{inner, 2, +1}));
  // Joined wraparound z=7 -> z=0 crosses via OCS.
  const TpuId wrap = cluster.chip_at(0, Coord{{0, 0, 7}});
  EXPECT_TRUE(j.is_ocs_link(DirectedLink{wrap, 2, +1}));
  // Perpendicular wraparound (x face) is still OCS-realized.
  const TpuId xface = cluster.chip_at(0, Coord{{3, 0, 0}});
  EXPECT_TRUE(j.is_ocs_link(DirectedLink{xface, 0, +1}));
  // Perpendicular interior link is electrical.
  const TpuId xinner = cluster.chip_at(0, Coord{{1, 0, 0}});
  EXPECT_FALSE(j.is_ocs_link(DirectedLink{xinner, 0, +1}));
}

TEST(JoinedTorus, SlicesAndRingsWorkOnJoinedShape) {
  // A 4x4x8 slice spanning both racks runs all three dimensions — the
  // payoff of joining cubes into larger tori.
  OcsBank bank;
  auto joined = JoinedTorus::join(ClusterConfig{}, 2, 2, bank);
  ASSERT_TRUE(joined.ok());
  auto& cluster = joined.value().cluster();
  SliceAllocator alloc{cluster};
  const auto id = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 8}});
  ASSERT_TRUE(id.ok());
  const auto usable = coll::usable_dims(*alloc.slice(id.value()),
                                        cluster.config().rack_shape);
  EXPECT_EQ(usable.size(), 3u) << "multi-rack slice uses every dimension";
  const auto analysis =
      coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kAllActive);
  EXPECT_TRUE(analysis.congestion_free);
}

TEST(JoinedTorus, Figure6bCrossRackRepairCongests) {
  // Figure 6b: Slice-2 (8 chips) in rack 1's z-layers; rack 1 otherwise
  // full; rack 2 holds Slice-1 (2x4x4) plus other tenants, with 4 free
  // chips.  The failed chip's repair must reach rack 2 through the joined
  // Z dimension, but every candidate path transits allocated chips or
  // busy ring links -> infeasible, as the paper argues.
  OcsBank bank;
  auto joined = JoinedTorus::join(ClusterConfig{}, 2, 2, bank);
  ASSERT_TRUE(joined.ok());
  auto& cluster = joined.value().cluster();
  SliceAllocator alloc{cluster};

  // Rack 1 (z 0..3): Slice-2 = 2x4x1 at z=0; the rest of rack 1 allocated.
  const auto slice2 = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 4, 1}});
  ASSERT_TRUE(slice2.ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{2, 0, 0}}, Shape{{2, 4, 1}}).ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 1}}, Shape{{4, 4, 3}}).ok());
  // Rack 2 (z 4..7): Slice-1 = 2x4x4 at x 0..1; another tenant at x 2..3
  // except one free 2x2x1 corner.
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 4}}, Shape{{2, 4, 4}}).ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{2, 0, 4}}, Shape{{2, 4, 3}}).ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{2, 0, 7}}, Shape{{2, 2, 1}}).ok());
  // Free: (2..3, 2..3, 7) — four chips in rack 2.
  EXPECT_EQ(cluster.chips_in_state(ChipState::kFree).size(), 4u);

  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 0}});
  const auto attempt = core_attempt(cluster, alloc, failed);
  EXPECT_FALSE(attempt);
}

// Local helper mirroring core::attempt_electrical_repair's feasibility via
// the congestion toolkit (topo tests must not depend on lp_core).
bool core_attempt(TpuCluster& cluster, const SliceAllocator& alloc, TpuId failed) {
  const auto owner = alloc.owner(failed);
  if (!owner) return false;
  const Slice* slice = alloc.slice(*owner);
  const auto traffic =
      coll::slice_traffic(cluster, *slice, coll::RingSelection::kUsableOnly);
  std::vector<TpuId> neighbors;
  for (const auto& ring : traffic.rings) {
    for (std::size_t i = 0; i < ring.members.size(); ++i) {
      if (ring.members[i] != failed) continue;
      neighbors.push_back(ring.members[(i + 1) % ring.members.size()]);
      neighbors.push_back(
          ring.members[(i + ring.members.size() - 1) % ring.members.size()]);
    }
  }
  const auto analysis =
      coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kUsableOnly);
  coll::LinkLoad busy{cluster.directed_link_count()};
  for (const auto& st : analysis.per_slice) busy.add_all(st.links);
  for (TpuId spare : cluster.chips_in_state(ChipState::kFree)) {
    bool all_ok = !neighbors.empty();
    for (TpuId n : neighbors) {
      if (!coll::find_uncongested_path(cluster, alloc, busy, n, spare)) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) return true;
  }
  return false;
}

}  // namespace
}  // namespace lp::topo
