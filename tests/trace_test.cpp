#include <gtest/gtest.h>

#include "collective/schedule.hpp"
#include "sim/flow_sim.hpp"
#include "sim/trace.hpp"
#include "topo/slice.hpp"

namespace lp::sim {
namespace {

TEST(Trace, CsvFormat) {
  TimelineTrace trace;
  trace.add(TraceEvent{0, "reconfig", Duration::zero(), Duration::micros(3.7),
                       Bandwidth::zero()});
  trace.add(TraceEvent{0, "0->1", Duration::micros(3.7), Duration::micros(10.0),
                       Bandwidth::gbps(100)});
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("phase,label,start_us,end_us,rate_gbps"), std::string::npos);
  EXPECT_NE(csv.find("0,reconfig,0,3.7,0"), std::string::npos);
  EXPECT_NE(csv.find("0->1"), std::string::npos);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_NEAR(trace.span().to_micros(), 10.0, 1e-9);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, FlowSimRecordsSchedule) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const coll::CostParams params;
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster, slice, DataSize::mib(16), coll::Interconnect::kOptical, params);
  const FlowSimulator fsim{cluster.dim_bandwidth()};
  TimelineTrace trace;
  const auto result = fsim.run(schedule, &trace);
  // 7 phases x 8 flows + 1 reconfig event.
  EXPECT_EQ(trace.size(), 7u * 8u + 1u);
  EXPECT_NEAR(trace.span().to_seconds(), result.total.to_seconds(), 1e-12);
  // First event is the reconfiguration.
  EXPECT_EQ(trace.events().front().label, "reconfig");
  EXPECT_NEAR((trace.events().front().end - trace.events().front().start).to_micros(),
              3.7, 1e-6);
  // Events are phase-ordered and non-overlapping across phase boundaries.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_GE(trace.events()[i].phase, trace.events()[i - 1].phase);
  }
}

TEST(Trace, NullTraceIsNoop) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const coll::CostParams params;
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster, slice, DataSize::mib(16), coll::Interconnect::kElectrical, params);
  const FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto with = fsim.run(schedule, nullptr);
  TimelineTrace trace;
  const auto without = fsim.run(schedule, &trace);
  EXPECT_DOUBLE_EQ(with.total.to_seconds(), without.total.to_seconds());
}

}  // namespace
}  // namespace lp::sim
