#include <gtest/gtest.h>

#include "routing/wdm_planner.hpp"

namespace lp::routing {
namespace {

using fabric::GlobalTile;
using fabric::TileCoord;
using fabric::Wafer;

class WdmPlannerFixture : public ::testing::Test {
 protected:
  Wafer wafer_;
  WdmPlanner planner_{wafer_, 16};
};

TEST_F(WdmPlannerFixture, PlacesAndReleases) {
  const Demand d{GlobalTile{0, 0}, GlobalTile{0, 9}, 4};
  auto circuit = planner_.place(d);
  ASSERT_TRUE(circuit.ok()) << circuit.error().message;
  EXPECT_EQ(circuit.value().channels.size(), 4u);
  EXPECT_FALSE(circuit.value().hops.empty());
  EXPECT_EQ(planner_.stats().placed, 1u);
  planner_.release(circuit.value());
  // Same channels available again.
  auto again = planner_.place(d);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().channels, circuit.value().channels);
}

TEST_F(WdmPlannerFixture, AlternatePathAvoidsContinuityBlock) {
  // Fill all 16 channels on the XY path's first edge; the YX (or routed)
  // candidate must be used instead.
  const Demand blocker{GlobalTile{0, 0}, GlobalTile{0, 1}, 16};
  ASSERT_TRUE(planner_.place(blocker).ok());
  const Demand d{GlobalTile{0, 0}, GlobalTile{0, 9}, 2};
  auto circuit = planner_.place(d);
  ASSERT_TRUE(circuit.ok()) << circuit.error().message;
  // The chosen path cannot start with East (tile 0 -> 1).
  EXPECT_NE(circuit.value().hops.front(), fabric::Direction::kEast);
}

TEST_F(WdmPlannerFixture, BlocksWhenAllCandidatesFull) {
  // Saturate every edge out of tile 0.
  ASSERT_TRUE(planner_.place(Demand{GlobalTile{0, 0}, GlobalTile{0, 1}, 16}).ok());
  ASSERT_TRUE(planner_.place(Demand{GlobalTile{0, 0}, GlobalTile{0, 8}, 16}).ok());
  const auto blocked = planner_.place(Demand{GlobalTile{0, 0}, GlobalTile{0, 9}, 1});
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(planner_.stats().blocked_continuity, 1u);
  EXPECT_GT(planner_.stats().blocking_probability(), 0.0);
}

TEST_F(WdmPlannerFixture, RejectsCrossWafer) {
  const auto r = planner_.place(Demand{GlobalTile{0, 0}, GlobalTile{1, 1}, 1});
  EXPECT_FALSE(r.ok());
}

TEST_F(WdmPlannerFixture, StatsReset) {
  (void)planner_.place(Demand{GlobalTile{0, 0}, GlobalTile{0, 3}, 1});
  planner_.reset_stats();
  EXPECT_EQ(planner_.stats().placed, 0u);
  EXPECT_EQ(planner_.stats().blocking_probability(), 0.0);
}

TEST_F(WdmPlannerFixture, ChurnNeverLeaksChannels) {
  Rng rng{88};
  std::vector<WdmCircuit> live;
  for (int op = 0; op < 500; ++op) {
    if (!live.empty() && rng.bernoulli(0.5)) {
      const std::size_t pick = rng.uniform_index(live.size());
      planner_.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
      auto dst = static_cast<fabric::TileId>(rng.uniform_index(32));
      if (dst == src) dst = (dst + 1) % 32;
      auto c = planner_.place(Demand{GlobalTile{0, src}, GlobalTile{0, dst}, 2});
      if (c) live.push_back(std::move(c).value());
    }
  }
  for (const auto& c : live) planner_.release(c);
  // Every edge must be fully free again.
  for (fabric::TileId t = 0; t < wafer_.tile_count(); ++t) {
    for (fabric::Direction dir : fabric::kAllDirections) {
      if (!wafer_.neighbor(t, dir)) continue;
      EXPECT_NEAR(planner_.ledger().occupancy(t, dir), 0.0, 1e-12)
          << "tile " << t << " dir " << to_string(dir);
    }
  }
}

}  // namespace
}  // namespace lp::routing
