// Tests of the runtime layer: the bounded-timeout recovery driver and the
// event-driven training-run simulator (fault timeline -> detection ->
// recovery -> rollback -> goodput accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "collective/schedule.hpp"
#include "core/training_sim.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "lightpath/fabric.hpp"
#include "routing/repair.hpp"
#include "runtime/recovery.hpp"
#include "runtime/training_run.hpp"
#include "util/parallel.hpp"

namespace lp::runtime {
namespace {

using fabric::Fabric;
using fabric::GlobalTile;

// --- drive_recovery --------------------------------------------------------

TEST(DriveRecovery, RetuneRecoversOnTheFirstClimb) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  routing::DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;
  const RecoveryResult res = drive_recovery(fab, victim, RecoveryPolicy{});
  EXPECT_TRUE(res.recovered);
  EXPECT_FALSE(res.fell_through);
  EXPECT_FALSE(res.plan_failure);
  EXPECT_EQ(res.rung, routing::RepairRung::kRetune);
  EXPECT_EQ(res.climbs, 1u);
  EXPECT_EQ(res.backoff_latency, Duration::zero());
  ASSERT_EQ(res.circuits.size(), 1u);
  EXPECT_EQ(res.circuits.front(), id.value());
}

TEST(DriveRecovery, UnknownVictimIsAPlanFailure) {
  Fabric fab;
  routing::DegradedCircuit victim;
  victim.id = 9999;
  const RecoveryResult res = drive_recovery(fab, victim, RecoveryPolicy{});
  EXPECT_TRUE(res.plan_failure);
  EXPECT_FALSE(res.recovered);
  EXPECT_FALSE(res.fell_through);
  EXPECT_EQ(res.climbs, 1u) << "a plan failure is diagnosed on the first climb";
}

// drive_recovery is strictly optical: when every optical rung is out of
// ideas the ladder lands on rung 5, which is reported as fell_through (the
// caller degrades elastically) and charged nothing for migration.
TEST(DriveRecovery, OpticalExhaustionFallsThroughWithoutMigrationCharge) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  routing::DegradedCircuit victim;
  victim.id = id.value();
  victim.dst_dead = true;  // retune/reroute cannot help, no spares offered
  const RecoveryResult res = drive_recovery(fab, victim, RecoveryPolicy{});
  EXPECT_FALSE(res.recovered);
  EXPECT_TRUE(res.fell_through);
  EXPECT_EQ(res.rung, routing::RepairRung::kRackMigration);
  EXPECT_EQ(fab.circuit(id.value()), nullptr) << "the dead edge is torn down";
  EXPECT_LT(res.total(), Duration::seconds(1.0))
      << "rung 5 is a free sentinel here, not a 600 s migration";
}

TEST(DriveRecovery, BudgetExhaustionBacksOffExponentially) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  routing::DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  routing::EscalationOptions base;
  base.validate = [](const Fabric&, fabric::CircuitId) { return false; };
  RecoveryPolicy policy;
  policy.initial_budget = Duration::micros(0.001);  // below one probe's cost
  policy.backoff_base = Duration::micros(10.0);
  policy.backoff_factor = 2.0;
  policy.max_attempts = 2;
  const RecoveryResult res = drive_recovery(fab, victim, policy, base);
  EXPECT_EQ(res.climbs, 3u) << "two bounded climbs, then the unbounded one";
  EXPECT_TRUE(res.fell_through) << "validator rejects everything";
  EXPECT_DOUBLE_EQ(res.backoff_latency.to_seconds(), 30e-6)
      << "10 us + 20 us of exponential backoff";
  EXPECT_GT(res.repair_latency, Duration::zero());
}

// --- TrainingRun -----------------------------------------------------------

TEST(TrainingRun, HealthyRunDeliversFullGoodput) {
  RunConfig config;
  config.iterations = 40;
  config.mtbf_hours = 1.0e12;  // effectively no faults
  TrainingRun run{config};
  const RunReport report = run.run();
  EXPECT_EQ(report.iterations_completed, config.iterations);
  EXPECT_EQ(report.fault_events, 0u);
  EXPECT_EQ(report.ring_size_final, report.ring_size_initial);
  EXPECT_NEAR(report.goodput(), 1.0, 1e-12);
  EXPECT_EQ(report.lost.total(), Duration::zero());
}

TEST(TrainingRun, ReportIsAPureFunctionOfTheConfig) {
  RunConfig config;
  config.iterations = 30;
  config.mtbf_hours = 0.02;  // several faults inside the run
  TrainingRun a{config};
  TrainingRun b{config};
  const RunReport ra = a.run();
  const RunReport rb = b.run();
  EXPECT_EQ(ra.iterations_completed, rb.iterations_completed);
  EXPECT_EQ(ra.fault_events, rb.fault_events);
  EXPECT_EQ(ra.faults_injected, rb.faults_injected);
  EXPECT_EQ(ra.detections, rb.detections);
  EXPECT_EQ(ra.rollbacks, rb.rollbacks);
  EXPECT_EQ(ra.elastic_shrinks, rb.elastic_shrinks);
  EXPECT_EQ(ra.recovered_by, rb.recovered_by);
  EXPECT_EQ(ra.ring_size_final, rb.ring_size_final);
  EXPECT_EQ(ra.wall_clock.to_seconds(), rb.wall_clock.to_seconds())
      << "must be bit-identical";
  EXPECT_EQ(ra.recover_seconds, rb.recover_seconds);
}

TEST(TrainingRun, HeartbeatDetectionChargesTickPlusLatency) {
  RunConfig config;
  config.iterations = 5;
  // One scripted chip death at t=10.5 ms, during bucket compute (the first
  // collective starts at 25 ms), with spares available for respare.
  config.script = {{Duration::millis(10.5),
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 5}}}}};
  TrainingRun run{config};
  const RunReport report = run.run();
  ASSERT_EQ(report.detections, 1u);
  EXPECT_EQ(report.mid_collective_faults, 0u) << "struck during compute";
  // Heartbeats every 5 ms: the 10.5 ms strike is noticed at 15 ms, diagnosed
  // 100 us later -> 4.6 ms of detection lag.
  EXPECT_NEAR(report.lost.detection.to_seconds(), 4.6e-3, 1e-9);
}

TEST(TrainingRun, ChipDeathWithSparesResparesBothRingEdges) {
  RunConfig config;
  config.iterations = 5;
  config.script = {{Duration::millis(10.5),
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 5}}}}};
  TrainingRun run{config};
  const RunReport report = run.run();
  EXPECT_EQ(report.iterations_completed, config.iterations);
  EXPECT_EQ(report.ring_size_final, report.ring_size_initial)
      << "a spare replaced the dead member";
  EXPECT_EQ(report.recovered_by[routing::rung_index(routing::RepairRung::kRespare)],
            2u)
      << "in-edge and out-edge of the dead member";
  EXPECT_EQ(report.elastic_shrinks, 0u);
  EXPECT_EQ(report.rollbacks, 1u) << "the dead member's state is gone";
  const auto& members = run.ring_members();
  EXPECT_EQ(std::count(members.begin(), members.end(), GlobalTile{0, 5}), 0)
      << "the dead chip left the ring";
}

// The acceptance scenario: a chip dies mid-collective with the spare pool
// exhausted.  The run must take the elastic-shrink path — ring shrinks by
// one, the schedule is rebuilt without the dead chip, and the job completes
// degraded instead of migrating.
TEST(TrainingRun, MidCollectiveDeathWithoutSparesShrinksElastically) {
  RunConfig config;
  config.iterations = 10;
  config.ring_tiles_per_wafer = 32;  // every tile enrolled: no spare pool
  // Bucket 0's collective starts at compute_per_bucket (25 ms); strike
  // exactly then, inside the first comm window.
  config.script = {{config.iteration.compute_per_bucket,
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 0}}}}};
  TrainingRun run{config};
  const RunReport report = run.run();
  EXPECT_EQ(report.mid_collective_faults, 1u);
  EXPECT_GE(report.elastic_shrinks, 1u);
  EXPECT_EQ(report.migrations, 0u) << "photonic policy never migrates";
  EXPECT_EQ(report.ring_size_final, report.ring_size_initial - 1);
  EXPECT_EQ(report.iterations_completed, config.iterations)
      << "the run completes degraded";
  EXPECT_GE(report.rollbacks, 1u);
  EXPECT_LT(report.goodput(), 1.0);

  // Regression: the rebuilt elastic schedule must not reference the dead
  // chip, and no surviving ring circuit may ride quarantined hardware.
  const auto tiles = run.fabric().wafer(0).tile_count();
  const auto dead_id = static_cast<topo::TpuId>(0 * tiles + 0);
  for (const coll::Phase& phase : run.schedule().phases) {
    for (const coll::Transfer& t : phase.transfers) {
      EXPECT_NE(t.src, dead_id);
      EXPECT_NE(t.dst, dead_id);
    }
  }
  const fault::HealthMonitor monitor{config.health};
  for (const fabric::CircuitId id : run.ring_circuits()) {
    EXPECT_EQ(monitor.diagnose(run.fabric(), run.active_faults(), id).health,
              fault::CircuitHealth::kHealthy)
        << "circuit " << id;
  }
  const auto& members = run.ring_members();
  EXPECT_EQ(std::count(members.begin(), members.end(), GlobalTile{0, 0}), 0);
}

TEST(TrainingRun, PhotonicRecoveryBeatsElectricalMigration) {
  RunConfig config;
  config.iterations = 20;
  config.script = {{Duration::millis(10.5),
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 5}}}}};
  RunConfig electrical = config;
  electrical.policy = RunPolicy::kElectricalMigration;
  const RunReport photonic = TrainingRun{config}.run();
  const RunReport migrated = TrainingRun{electrical}.run();
  EXPECT_EQ(migrated.migrations, 1u);
  EXPECT_GT(photonic.goodput(), migrated.goodput())
      << "us-scale respare vs a 600 s rack migration";
}

// --- run_resilience_sweep --------------------------------------------------

ResilienceSweepConfig quick_sweep() {
  ResilienceSweepConfig config;
  config.base.iterations = 10;
  config.mtbf_points = {0.01, 0.05};
  config.trials = 2;
  return config;
}

void expect_identical(const ResilienceSweepReport& a, const ResilienceSweepReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const MtbfPointReport& pa = a.points[i];
    const MtbfPointReport& pb = b.points[i];
    EXPECT_EQ(pa.mtbf_hours, pb.mtbf_hours) << i;
    EXPECT_EQ(pa.policy, pb.policy) << i;
    EXPECT_EQ(pa.goodput_mean, pb.goodput_mean) << "point " << i << " must be bit-identical";
    EXPECT_EQ(pa.goodput_min, pb.goodput_min) << i;
    EXPECT_EQ(pa.goodput_max, pb.goodput_max) << i;
    EXPECT_EQ(pa.lost_redo_seconds, pb.lost_redo_seconds) << i;
    EXPECT_EQ(pa.lost_detection_seconds, pb.lost_detection_seconds) << i;
    EXPECT_EQ(pa.lost_recovery_seconds, pb.lost_recovery_seconds) << i;
    EXPECT_EQ(pa.recover_p50_seconds, pb.recover_p50_seconds) << i;
    EXPECT_EQ(pa.recover_p99_seconds, pb.recover_p99_seconds) << i;
    EXPECT_EQ(pa.fault_events, pb.fault_events) << i;
    EXPECT_EQ(pa.detections, pb.detections) << i;
    EXPECT_EQ(pa.rollbacks, pb.rollbacks) << i;
    EXPECT_EQ(pa.elastic_shrinks, pb.elastic_shrinks) << i;
    EXPECT_EQ(pa.migrations, pb.migrations) << i;
    EXPECT_EQ(pa.recovered_by, pb.recovered_by) << i;
  }
}

TEST(ResilienceSweep, ReportIdenticalAtAnyThreadCount) {
  auto serial = quick_sweep();
  serial.threads = 1;
  auto wide = quick_sweep();
  wide.threads = 8;
  expect_identical(run_resilience_sweep(serial), run_resilience_sweep(wide));
}

// The acceptance criterion as stated: LIGHTPATH_THREADS=1 and =8 produce a
// bit-identical report when the sweep is left to consult the environment.
TEST(ResilienceSweep, ReportIdenticalUnderLightpathThreadsEnv) {
  const auto env_sweep = [](const char* threads) {
    ASSERT_EQ(setenv("LIGHTPATH_THREADS", threads, 1), 0);
    EXPECT_EQ(util::env_threads(), std::strtoul(threads, nullptr, 10));
  };
  auto config = quick_sweep();
  config.threads = 0;
  env_sweep("1");
  const auto narrow = run_resilience_sweep(config);
  env_sweep("8");
  const auto wide = run_resilience_sweep(config);
  ASSERT_EQ(unsetenv("LIGHTPATH_THREADS"), 0);
  expect_identical(narrow, wide);
}

TEST(ResilienceSweep, PairsPoliciesPerPointPhotonicFirst) {
  const auto report = run_resilience_sweep(quick_sweep());
  ASSERT_EQ(report.points.size(), 4u);
  for (std::size_t i = 0; i < report.points.size(); i += 2) {
    EXPECT_EQ(report.points[i].policy, RunPolicy::kPhotonicRepair);
    EXPECT_EQ(report.points[i + 1].policy, RunPolicy::kElectricalMigration);
    EXPECT_EQ(report.points[i].mtbf_hours, report.points[i + 1].mtbf_hours);
  }
}

// --- Gray failures: transient retries across climbs, the sweep -------------

TEST(DriveRecovery, TransientFailuresAreRetriedAcrossClimbs) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  routing::DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;

  // The first four programming attempts (anywhere on the ladder) settle
  // out; the fifth locks.  Climb 1 burns retune + rung-5 retries and ends
  // transient; climb 2 retunes on its first attempt.
  auto calls = std::make_shared<std::uint32_t>(0);
  routing::EscalationOptions base;
  base.transient_failure = [calls](routing::RepairRung, std::uint32_t) {
    return ++*calls <= 4;
  };
  RecoveryPolicy policy;
  policy.initial_budget = Duration::zero();  // unbounded climbs: isolate transients
  const RecoveryResult res = drive_recovery(fab, victim, policy, base);
  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(res.rung, routing::RepairRung::kRetune);
  EXPECT_EQ(res.climbs, 2u) << "one all-transient climb, then the recovery";
  EXPECT_EQ(res.transient_failures, 4u);
  EXPECT_FALSE(res.transient_failed);
  EXPECT_GT(res.backoff_latency, Duration::zero())
      << "a transient climb backs off before the next, like budget exhaustion";
}

TEST(DriveRecovery, AllTransientClimbsLeaveTheVictimEstablished) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 2);
  ASSERT_TRUE(id.ok());
  routing::DegradedCircuit victim;
  victim.id = id.value();
  victim.dead_lasers = 2;

  routing::EscalationOptions base;
  base.transient_failure = [](routing::RepairRung, std::uint32_t) { return true; };
  const RecoveryResult res = drive_recovery(fab, victim, RecoveryPolicy{}, base);
  EXPECT_FALSE(res.recovered);
  EXPECT_FALSE(res.fell_through);
  EXPECT_FALSE(res.plan_failure);
  EXPECT_TRUE(res.transient_failed)
      << "even the final unbounded climb ended in settle timeouts";
  EXPECT_GT(res.transient_failures, 0u);
  EXPECT_NE(fab.circuit(id.value()), nullptr)
      << "nothing committed: the victim stays up for a later climb";
}

GraySweepConfig small_gray_config() {
  GraySweepConfig config;
  config.base.iterations = 300;
  config.base.mtbf_hours = 1e9;  // flaps only: isolate the gray layer
  config.base.recovery.rung_backoff.base = Duration::micros(50.0);
  config.base.recovery.rung_backoff.jitter_fraction = 0.5;
  config.flap_rates_per_hour = {8.0, 16.0};
  config.trials = 2;
  return config;
}

TEST(GraySweep, HysteresisBeatsNaiveAtEveryRate) {
  const auto report = run_gray_sweep(small_gray_config());
  ASSERT_EQ(report.points.size(), 4u) << "two rates x two arms";
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    const GrayPointReport& hyst = report.points[i];
    const GrayPointReport& naive = report.points[i + 1];
    ASSERT_TRUE(hyst.hysteresis);
    ASSERT_FALSE(naive.hysteresis);
    ASSERT_EQ(hyst.flap_rate_per_hour, naive.flap_rate_per_hour);
    EXPECT_GT(hyst.goodput_mean, naive.goodput_mean)
        << "hysteresis+backoff must win at " << hyst.flap_rate_per_hour << "/h";
    EXPECT_GT(hyst.suppressed_repairs, 0u) << "the damper must actually engage";
    EXPECT_EQ(naive.suppressed_repairs, 0u) << "the naive arm never suppresses";
    EXPECT_EQ(hyst.misclassifications, 0u)
        << "hysteresis never declares a flapping chip dead";
    EXPECT_GT(naive.misclassifications, 0u)
        << "naive eventually prices the gray failure as fail-stop; that is "
           "the thrash the sweep measures";
  }
}

TEST(GraySweep, ReportIdenticalAtAnyThreadCount) {
  auto config = small_gray_config();
  config.threads = 1;
  const auto serial = run_gray_sweep(config);
  for (const unsigned threads : {2u, 8u}) {
    config.threads = threads;
    const auto parallel = run_gray_sweep(config);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    EXPECT_EQ(parallel.digest(), serial.digest()) << threads << " threads";
  }
}

}  // namespace
}  // namespace lp::runtime
