// Tests pinning the cost model to the paper's Tables 1 and 2 and the §4.1
// bandwidth-utilization claims (Figure 5c).
#include <gtest/gtest.h>

#include "collective/autotuner.hpp"
#include "collective/cost_model.hpp"
#include "topo/slice.hpp"

namespace lp::coll {
namespace {

using topo::Coord;
using topo::Shape;
using topo::Slice;

constexpr Shape kRack{{4, 4, 4}};

CostParams params_with(Bandwidth b) {
  CostParams p;
  p.chip_bandwidth = b;
  return p;
}

// --- Table 1: Slice-1 (4x2x1), p = 8 ---------------------------------------

class Table1 : public ::testing::Test {
 protected:
  Slice slice1_{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  CostParams params_ = params_with(Bandwidth::gBps(300.0));
  DataSize n_ = DataSize::mib(256);
  CollectivePlan plan_ = build_plan(slice1_, kRack);
};

TEST_F(Table1, PlanIsOneSnakeRingOverEightChips) {
  ASSERT_EQ(plan_.stages.size(), 1u);
  EXPECT_TRUE(plan_.stages[0].snake);
  EXPECT_EQ(plan_.stages[0].ring_size, 8);
  EXPECT_EQ(plan_.chip_count, 8);
}

TEST_F(Table1, ElectricalAlphaIs7Steps) {
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  EXPECT_EQ(cost.alpha_steps, 7);
  EXPECT_EQ(cost.reconfigs, 0);
}

TEST_F(Table1, OpticalAlphaIs7StepsPlusOneReconfig) {
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  EXPECT_EQ(cost.alpha_steps, 7);
  EXPECT_EQ(cost.reconfigs, 1);
}

TEST_F(Table1, ElectricalBetaIsThreeTimesOptimal) {
  // Table 1: N * (p-1)/p * 3/B.
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  const Duration expected =
      transfer_time(n_ * (7.0 / 8.0), params_.chip_bandwidth / 3.0);
  EXPECT_NEAR(cost.beta_time.to_seconds(), expected.to_seconds(), 1e-12);
  const Duration optimal = optimal_reduce_scatter_beta(n_, 8, params_.chip_bandwidth);
  EXPECT_NEAR(cost.beta_time / optimal, 3.0, 1e-9);
}

TEST_F(Table1, OpticalBetaIsOptimal) {
  // Table 1: N * (p-1)/p * 1/B.
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  const Duration optimal = optimal_reduce_scatter_beta(n_, 8, params_.chip_bandwidth);
  EXPECT_NEAR(cost.beta_time / optimal, 1.0, 1e-9);
}

TEST_F(Table1, OpticsWinsForLargeBuffersDespiteReconfig) {
  const auto elec = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  const auto opt = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  EXPECT_LT(opt.total(params_).to_seconds(), elec.total(params_).to_seconds());
}

TEST_F(Table1, ElectricalWinsForTinyBuffers) {
  // At a few bytes, the extra r dominates any beta saving.
  const DataSize tiny = DataSize::bytes(64);
  const auto elec = reduce_scatter_cost(plan_, tiny, Interconnect::kElectrical, params_);
  const auto opt = reduce_scatter_cost(plan_, tiny, Interconnect::kOptical, params_);
  EXPECT_GT(opt.total(params_).to_seconds(), elec.total(params_).to_seconds());
}

// --- Table 2: Slice-3 (4x4x1), D = 2 ----------------------------------------

class Table2 : public ::testing::Test {
 protected:
  Slice slice3_{2, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  CostParams params_ = params_with(Bandwidth::gBps(300.0));
  DataSize n_ = DataSize::mib(256);
  CollectivePlan plan_ = build_plan(slice3_, kRack);
};

TEST_F(Table2, PlanIsTwoProperStages) {
  ASSERT_EQ(plan_.stages.size(), 2u);
  EXPECT_FALSE(plan_.stages[0].snake);
  EXPECT_EQ(plan_.stages[0].ring_size, 4);
  EXPECT_DOUBLE_EQ(plan_.stages[0].buffer_fraction, 1.0);
  EXPECT_EQ(plan_.stages[1].ring_size, 4);
  EXPECT_DOUBLE_EQ(plan_.stages[1].buffer_fraction, 0.25);
}

TEST_F(Table2, AlphaIsThreePerStage) {
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  EXPECT_EQ(cost.alpha_steps, 6);  // 3 + 3
  const auto opt = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  EXPECT_EQ(opt.reconfigs, 2);  // r per stage (two table rows)
}

TEST_F(Table2, ElectricalBetaMatchesTable) {
  // Row 1: (3/4)N at B/3; row 2: (3/16)N at B/3.
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  const Bandwidth b3 = params_.chip_bandwidth / 3.0;
  const Duration expected =
      transfer_time(n_ * 0.75, b3) + transfer_time(n_ * (3.0 / 16.0), b3);
  EXPECT_NEAR(cost.beta_time.to_seconds(), expected.to_seconds(), 1e-12);
}

TEST_F(Table2, OpticalBetaMatchesTable) {
  // Stages run at B/2 after redirecting the idle Z bandwidth.
  const auto cost = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  const Bandwidth b2 = params_.chip_bandwidth / 2.0;
  const Duration expected =
      transfer_time(n_ * 0.75, b2) + transfer_time(n_ * (3.0 / 16.0), b2);
  EXPECT_NEAR(cost.beta_time.to_seconds(), expected.to_seconds(), 1e-12);
}

TEST_F(Table2, ElectricalBetaIs1_5xOptical) {
  const auto elec = reduce_scatter_cost(plan_, n_, Interconnect::kElectrical, params_);
  const auto opt = reduce_scatter_cost(plan_, n_, Interconnect::kOptical, params_);
  EXPECT_NEAR(elec.beta_time / opt.beta_time, 1.5, 1e-9);
}

// --- Figure 5c: bandwidth utilization ---------------------------------------

TEST(Utilization, Slice1ElectricalIsOneThird) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  EXPECT_NEAR(bandwidth_utilization(plan, Interconnect::kElectrical, p), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(bandwidth_utilization(plan, Interconnect::kOptical, p), 1.0, 1e-12);
}

TEST(Utilization, Slice3ElectricalIsTwoThirds) {
  const Slice s{2, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  // Slice-3 drives 2 of the 3 provisioned dimensions: "33% lower" (Fig 5c).
  EXPECT_NEAR(bandwidth_utilization(plan, Interconnect::kElectrical, p), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(bandwidth_utilization(plan, Interconnect::kOptical, p), 1.0, 1e-12);
}

TEST(Utilization, FullRackElectricalMatchesOptical) {
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 4}}};
  const auto plan = build_plan(s, kRack);
  ASSERT_EQ(plan.stages.size(), 3u);
  const CostParams p;
  const DataSize n = DataSize::mib(64);
  const auto elec = reduce_scatter_cost(plan, n, Interconnect::kElectrical, p);
  const auto opt = reduce_scatter_cost(plan, n, Interconnect::kOptical, p);
  EXPECT_NEAR(elec.beta_time / opt.beta_time, 1.0, 1e-9)
      << "full-rack slices already use all dims; optics adds no beta gain";
}

// --- AllReduce / AllGather composition --------------------------------------

TEST(Composition, AllReduceIsTwiceReduceScatter) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  const DataSize n = DataSize::mib(100);
  const auto rs = reduce_scatter_cost(plan, n, Interconnect::kOptical, p);
  const auto ag = all_gather_cost(plan, n, Interconnect::kOptical, p);
  const auto ar = all_reduce_cost(plan, n, Interconnect::kOptical, p);
  EXPECT_EQ(ar.alpha_steps, rs.alpha_steps + ag.alpha_steps);
  EXPECT_EQ(ar.reconfigs, rs.reconfigs + ag.reconfigs);
  EXPECT_NEAR(ar.beta_time.to_seconds(),
              rs.beta_time.to_seconds() + ag.beta_time.to_seconds(), 1e-15);
}

// --- Simultaneous multi-order variant ---------------------------------------

TEST(Simultaneous, NoBenefitWithSingleStage) {
  // The paper: subdividing cannot help a slice with one usable dimension.
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  const DataSize n = DataSize::mib(128);
  const auto seq = reduce_scatter_cost(plan, n, Interconnect::kElectrical, p);
  const auto sim = simultaneous_reduce_scatter_cost(plan, n, p);
  EXPECT_NEAR(sim.beta_time.to_seconds(), seq.beta_time.to_seconds(), 1e-12);
}

TEST(Simultaneous, HelpsMultiStageElectrical) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  const DataSize n = DataSize::mib(128);
  const auto seq = reduce_scatter_cost(plan, n, Interconnect::kElectrical, p);
  const auto sim = simultaneous_reduce_scatter_cost(plan, n, p);
  EXPECT_LT(sim.beta_time.to_seconds(), seq.beta_time.to_seconds());
}

// --- Property sweep: optics never loses on beta -----------------------------

struct ShapeCase {
  Shape shape;
  Coord offset;
};

class BetaDominance : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(BetaDominance, OpticalBetaNeverWorseThanElectrical) {
  const auto& c = GetParam();
  const Slice s{0, 0, c.offset, c.shape};
  const auto plan = build_plan(s, kRack);
  if (plan.stages.empty()) GTEST_SKIP() << "single-chip slice";
  const CostParams p;
  for (double mib : {0.25, 4.0, 64.0, 1024.0}) {
    const DataSize n = DataSize::mib(mib);
    const auto elec = reduce_scatter_cost(plan, n, Interconnect::kElectrical, p);
    const auto opt = reduce_scatter_cost(plan, n, Interconnect::kOptical, p);
    EXPECT_LE(opt.beta_time.to_seconds(), elec.beta_time.to_seconds() * (1.0 + 1e-12))
        << "shape " << c.shape[0] << "x" << c.shape[1] << "x" << c.shape[2];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BetaDominance,
    ::testing::Values(ShapeCase{Shape{{4, 2, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 2}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{2, 2, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{2, 2, 2}}, Coord{{1, 1, 1}}},
                      ShapeCase{Shape{{4, 1, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{1, 4, 2}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 4}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{2, 4, 4}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 2, 2}}, Coord{{0, 2, 0}}}));

class AlphaConsistency : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(AlphaConsistency, AlphaStepsMatchPlanStructure) {
  const auto& c = GetParam();
  const Slice s{0, 0, c.offset, c.shape};
  const auto plan = build_plan(s, kRack);
  std::int32_t expected = 0;
  for (const auto& st : plan.stages) expected += st.ring_size - 1;
  EXPECT_EQ(plan.alpha_steps(), expected);
  // Total ring membership covers every chip at least once: the product of
  // stage ring sizes equals the chip count.
  if (!plan.stages.empty()) {
    std::int64_t product = 1;
    for (const auto& st : plan.stages) product *= st.ring_size;
    EXPECT_EQ(product, s.chip_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlphaConsistency,
    ::testing::Values(ShapeCase{Shape{{4, 2, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 1}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 2}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{2, 2, 2}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{4, 4, 4}}, Coord{{0, 0, 0}}},
                      ShapeCase{Shape{{2, 4, 2}}, Coord{{2, 0, 2}}}));

TEST(Plan, SingleChipSliceHasNoStages) {
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{1, 1, 1}}};
  const auto plan = build_plan(s, kRack);
  EXPECT_TRUE(plan.stages.empty());
  EXPECT_EQ(plan.alpha_steps(), 0);
  const CostParams p;
  EXPECT_EQ(bandwidth_utilization(plan, Interconnect::kElectrical, p), 0.0);
}

TEST(Plan, UsableDimsRule) {
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 2, 4}}};
  const auto usable = usable_dims(s, kRack);
  ASSERT_EQ(usable.size(), 2u);
  EXPECT_EQ(usable[0], 0u);
  EXPECT_EQ(usable[1], 2u);
  const auto active = active_dims(s);
  EXPECT_EQ(active.size(), 3u);
}

TEST(Plan, SnakeFoldsPartialDimWithFirstUsable) {
  // 4x4x2: Z (extent 2 of 4) folds with X into an 8-ring; Y stays proper.
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}};
  const auto plan = build_plan(s, kRack);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_TRUE(plan.stages[0].snake);
  EXPECT_EQ(plan.stages[0].ring_size, 8);
  EXPECT_FALSE(plan.stages[1].snake);
  EXPECT_EQ(plan.stages[1].ring_size, 4);
  EXPECT_DOUBLE_EQ(plan.stages[1].buffer_fraction, 1.0 / 8.0);
}

TEST(Cost, ReconfigTimeScalesWithR) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = build_plan(s, kRack);
  CostParams p;
  p.reconfig = Duration::micros(3.7);
  const auto cost = reduce_scatter_cost(plan, DataSize::mib(1), Interconnect::kOptical, p);
  EXPECT_NEAR(cost.reconfig_time(p).to_micros(), 7.4, 1e-9);
  EXPECT_NEAR(cost.total(p).to_seconds(),
              cost.alpha_time(p).to_seconds() + cost.reconfig_time(p).to_seconds() +
                  cost.beta_time.to_seconds(),
              1e-15);
}

TEST(Cost, PerStageFullStrategyBeatsStaticSplit) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto plan = build_plan(s, kRack);
  const CostParams p;
  const DataSize n = DataSize::mib(64);
  const auto split = reduce_scatter_cost(plan, n, Interconnect::kOptical, p,
                                         RedirectStrategy::kStaticSplit);
  const auto full = reduce_scatter_cost(plan, n, Interconnect::kOptical, p,
                                        RedirectStrategy::kPerStageFull);
  EXPECT_LT(full.beta_time.to_seconds(), split.beta_time.to_seconds());
}

// --- Unit audit --------------------------------------------------------------
//
// Hand-computed pins of the alpha-beta-r units documented in cost_model.hpp,
// checked against the autotuner's closed forms.  Chosen numbers make every
// term exact in binary floating point: rate 32 GB/s, power-of-two buffers.
//
//   alpha = 1 us per posted send step (software overhead, a Duration)
//   beta  = DataSize / Bandwidth via transfer_time (no stored constant)
//   r     = 3.7 us per fabric reprogram (MZI settle, Duration)

TEST(UnitAudit, RingAllReducePinnedByHand) {
  // m = 8, n = 8 MiB at 32 GB/s.  Ring AllReduce: 2 (m-1) alpha steps, one
  // reconfiguration (circuits persist), 2 (m-1) wire steps of n/m bytes.
  //   T(n/m) = 1 MiB / 32 GB/s = 1048576 / 32e9 s = 32.768 us
  //   total  = 14 x 1 us + 3.7 us + 14 x 32.768 us = 476.452 us
  const Autotuner tuner;  // alpha defaults to 1 us
  const Duration got =
      tuner.predict(CollOp::kAllReduce, Algorithm::kRing, 8, DataSize::mib(8),
                    Bandwidth::gBps(32.0), Duration::micros(3.7));
  EXPECT_NEAR(got.to_seconds(), 476.452e-6, 1e-12);
}

TEST(UnitAudit, RingReduceScatterPinnedByHand) {
  // Half the AllReduce: 7 alpha steps + r + 7 x T(1 MiB) = 7 + 3.7 +
  // 229.376 = 240.076 us.
  const Autotuner tuner;
  const Duration got =
      tuner.predict(CollOp::kReduceScatter, Algorithm::kRing, 8, DataSize::mib(8),
                    Bandwidth::gBps(32.0), Duration::micros(3.7));
  EXPECT_NEAR(got.to_seconds(), 240.076e-6, 1e-12);
}

TEST(UnitAudit, AllToAllRotationPinnedByHand) {
  // m = 5, each member scatters n = 4 MiB total.  Rotation: 4 rounds, each
  // re-pairing (alpha + r) and moving n/4 = 1 MiB:
  //   4 x (1 + 3.7 + 32.768) us = 149.872 us
  const Autotuner tuner;
  const Duration got =
      tuner.predict(CollOp::kAllToAll, Algorithm::kRotation, 5, DataSize::mib(4),
                    Bandwidth::gBps(32.0), Duration::micros(3.7));
  EXPECT_NEAR(got.to_seconds(), 149.872e-6, 1e-12);
}

TEST(UnitAudit, AllToAllRingPinnedByHand) {
  // Same exchange on the standing ring: one reconfiguration, but every one
  // of the 4 store-and-forward phases carries the inflated per-link load
  // n m / (2 (m-1)) = 4 MiB x 5/8 = 2.5 MiB:
  //   4 x 1 us + 3.7 us + 4 x 81.92 us = 335.38 us
  const Autotuner tuner;
  const Duration got =
      tuner.predict(CollOp::kAllToAll, Algorithm::kRing, 5, DataSize::mib(4),
                    Bandwidth::gBps(32.0), Duration::micros(3.7));
  EXPECT_NEAR(got.to_seconds(), 335.38e-6, 1e-12);
}

TEST(UnitAudit, BetaScalesInverselyWithBandwidth) {
  // Doubling the circuit rate must halve exactly the beta term and leave
  // alpha and r untouched — the units are independent.
  const Autotuner tuner;
  const DataSize n = DataSize::mib(8);
  const Duration r = Duration::micros(3.7);
  const Duration slow =
      tuner.predict(CollOp::kAllReduce, Algorithm::kRing, 8, n, Bandwidth::gBps(16.0), r);
  const Duration fast =
      tuner.predict(CollOp::kAllReduce, Algorithm::kRing, 8, n, Bandwidth::gBps(32.0), r);
  const Duration alpha_r = Duration::micros(14.0 + 3.7);
  EXPECT_NEAR((slow - alpha_r).to_seconds(), 2.0 * (fast - alpha_r).to_seconds(), 1e-12);
}

}  // namespace
}  // namespace lp::coll
