// Concurrency stress for the sharded lane ledger and the two-phase
// concurrent planner.  Run under TSan in CI (LIGHTPATH_SANITIZE=thread):
// the hammer tests exist to give the race detector real contention, and the
// planner tests pin the bit-identical-at-any-thread-count contract.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/concurrent_planner.hpp"
#include "routing/shard_ledger.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lp::routing {
namespace {

using fabric::Direction;
using fabric::Fabric;
using fabric::FabricConfig;
using fabric::GlobalTile;
using fabric::TileId;

FabricConfig grid_config(std::int32_t rows, std::int32_t cols, std::uint32_t lanes) {
  FabricConfig config;
  config.wafer.rows = rows;
  config.wafer.cols = cols;
  config.wafer.lanes_per_edge = lanes;
  config.wafer.tile.tx_wavelengths = 4096;
  config.wafer.tile.rx_wavelengths = 4096;
  config.wafer_count = 1;
  return config;
}

/// A deterministic staircase path (east, south, east, south, ...) from a
/// given tile, clipped at the wafer boundary — crosses quadrants, so every
/// reservation exercises the multi-shard lock path.
std::vector<Direction> staircase(const Fabric& fab, TileId from, std::size_t len) {
  std::vector<Direction> hops;
  std::int32_t row = static_cast<std::int32_t>(from) / fab.config().wafer.cols;
  std::int32_t col = static_cast<std::int32_t>(from) % fab.config().wafer.cols;
  for (std::size_t i = 0; i < len; ++i) {
    Direction d = i % 2 == 0 ? Direction::kEast : Direction::kSouth;
    std::int32_t nr = row + (d == Direction::kSouth ? 1 : 0);
    std::int32_t nc = col + (d == Direction::kEast ? 1 : 0);
    if (nc >= fab.config().wafer.cols) {
      d = Direction::kSouth;
      nr = row + 1;
      nc = col;
    }
    if (nr >= fab.config().wafer.rows) break;
    hops.push_back(d);
    row = nr;
    col = nc;
  }
  return hops;
}

// --- Shard mapping and atomicity unit tests --------------------------------

TEST(ShardedLaneLedger, QuadrantShardMapping) {
  const Fabric fab{grid_config(4, 4, 8)};
  const ShardedLaneLedger ledger{fab};
  EXPECT_EQ(ledger.shard_count(), 4u);
  EXPECT_EQ(ledger.shard_of(0, fab.wafer(0).tile_at({0, 0})), 0u);  // NW
  EXPECT_EQ(ledger.shard_of(0, fab.wafer(0).tile_at({0, 3})), 1u);  // NE
  EXPECT_EQ(ledger.shard_of(0, fab.wafer(0).tile_at({3, 0})), 2u);  // SW
  EXPECT_EQ(ledger.shard_of(0, fab.wafer(0).tile_at({3, 3})), 3u);  // SE
}

TEST(ShardedLaneLedger, ReserveIsAllOrNothing) {
  const Fabric fab{grid_config(4, 4, 2)};
  ShardedLaneLedger ledger{fab};
  const TileId a = fab.wafer(0).tile_at({0, 0});
  // Saturate one edge in the middle of the path-to-be.
  const TileId mid = fab.wafer(0).tile_at({0, 1});
  const std::vector<Direction> block{Direction::kEast};
  ASSERT_TRUE(ledger.try_reserve_path(0, mid, block, 2));

  const std::vector<Direction> path{Direction::kEast, Direction::kEast,
                                    Direction::kEast};
  EXPECT_FALSE(ledger.try_reserve_path(0, a, path, 1));
  // The hop before the blocked edge must have been rolled back.
  EXPECT_EQ(ledger.reserved(0, a, Direction::kEast), 0u);
  ledger.release_path(0, mid, block, 2);
  EXPECT_EQ(ledger.total_reserved(), 0u);
}

TEST(ShardedLaneLedger, DuplicateEdgeOnPathCountsTwice) {
  const Fabric fab{grid_config(4, 4, 2)};
  ShardedLaneLedger ledger{fab};
  const TileId a = fab.wafer(0).tile_at({1, 1});
  // east, west, east: crosses the (1,1)->E edge twice.
  const std::vector<Direction> path{Direction::kEast, Direction::kWest,
                                    Direction::kEast};
  EXPECT_FALSE(ledger.try_reserve_path(0, a, path, 2))
      << "2 lanes twice over a 2-lane edge must not fit";
  EXPECT_EQ(ledger.total_reserved(), 0u);
  EXPECT_TRUE(ledger.try_reserve_path(0, a, path, 1));
  EXPECT_EQ(ledger.reserved(0, a, Direction::kEast), 2u);
  ledger.release_path(0, a, path, 1);
  EXPECT_EQ(ledger.total_reserved(), 0u);
}

TEST(ShardedLaneLedger, RejectsPathLeavingWafer) {
  const Fabric fab{grid_config(4, 4, 8)};
  ShardedLaneLedger ledger{fab};
  const TileId corner = fab.wafer(0).tile_at({0, 3});
  const std::vector<Direction> off{Direction::kEast};
  EXPECT_FALSE(ledger.try_reserve_path(0, corner, off, 1));
  EXPECT_EQ(ledger.total_reserved(), 0u);
}

// --- Multi-threaded hammer -------------------------------------------------

struct HammerResult {
  std::vector<std::uint64_t> per_stream_successes;
  bool peaks_ok{false};
  std::uint64_t leftover{0};
};

/// 8 fixed RNG streams of reserve/release ops, partitioned across N worker
/// threads (stream s runs on thread s % N) — the util/parallel task-index
/// idiom.  With ample lanes no reservation can fail, so each stream's
/// success count is a pure function of its seed and the per-stream report
/// must be bit-identical at any thread count; TSan plus the peak audit
/// cover safety under the real contention the interleaving produces.
HammerResult hammer(unsigned threads) {
  const Fabric fab{grid_config(16, 16, 4096)};
  ShardedLaneLedger ledger{fab};
  constexpr unsigned kStreams = 8;
  constexpr std::size_t kOpsPerStream = 400;
  constexpr std::size_t kMaxOutstanding = 8;

  HammerResult result;
  result.per_stream_successes.assign(kStreams, 0);
  auto run_stream = [&](unsigned s) {
    Rng rng{util::task_seed(0x5afe, s)};
    struct Held {
      TileId from;
      std::vector<Direction> hops;
      std::uint32_t lanes;
    };
    std::vector<Held> held;
    for (std::size_t op = 0; op < kOpsPerStream; ++op) {
      if (held.size() >= kMaxOutstanding || (rng.bernoulli(0.4) && !held.empty())) {
        const std::size_t i = rng.uniform_index(held.size());
        ledger.release_path(0, held[i].from, held[i].hops, held[i].lanes);
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      const auto from = static_cast<TileId>(rng.uniform_index(16 * 16));
      const auto lanes = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
      std::vector<Direction> hops =
          staircase(fab, from, 2 + static_cast<std::size_t>(rng.uniform_index(12)));
      if (hops.empty()) continue;
      if (ledger.try_reserve_path(0, from, hops, lanes)) {
        ++result.per_stream_successes[s];
        held.push_back(Held{from, std::move(hops), lanes});
      }
    }
    for (const Held& h : held) ledger.release_path(0, h.from, h.hops, h.lanes);
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (unsigned s = t; s < kStreams; s += threads) run_stream(s);
    });
  }
  for (auto& t : workers) t.join();

  result.peaks_ok = ledger.peaks_within_capacity();
  result.leftover = ledger.total_reserved();
  return result;
}

TEST(ShardedLaneLedgerStress, AmpleCapacityHammerIsBitIdenticalAt1_2_8Threads) {
  const HammerResult base = hammer(1);
  EXPECT_TRUE(base.peaks_ok);
  EXPECT_EQ(base.leftover, 0u);
  std::uint64_t total = 0;
  for (std::uint64_t s : base.per_stream_successes) total += s;
  ASSERT_GT(total, 0u);

  for (unsigned threads : {2u, 8u}) {
    const HammerResult r = hammer(threads);
    EXPECT_TRUE(r.peaks_ok) << threads << " threads";
    EXPECT_EQ(r.leftover, 0u) << threads << " threads";
    EXPECT_EQ(r.per_stream_successes, base.per_stream_successes)
        << "per-stream reports must be bit-identical at " << threads << " threads";
  }
}

TEST(ShardedLaneLedgerStress, ScarcityNeverOversubscribes) {
  // 2 lanes per edge and 8 greedy threads: most reservations fail, but the
  // peak audit must still hold — no interleaving may double-book a lane.
  const Fabric fab{grid_config(8, 8, 2)};
  ShardedLaneLedger ledger{fab};
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      Rng rng{util::task_seed(0x7ac7, w)};
      for (std::size_t op = 0; op < 300; ++op) {
        const auto from = static_cast<TileId>(rng.uniform_index(8 * 8));
        std::vector<Direction> hops = staircase(fab, from, 1 + rng.uniform_index(8));
        if (hops.empty()) continue;
        const auto lanes = static_cast<std::uint32_t>(1 + rng.uniform_index(2));
        if (ledger.try_reserve_path(0, from, hops, lanes)) {
          if (rng.bernoulli(0.7)) ledger.release_path(0, from, hops, lanes);
          // else: hold to the end, keeping pressure on later rounds
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_TRUE(ledger.peaks_within_capacity());
  for (TileId t = 0; t < 64; ++t) {
    for (Direction d : fabric::kAllDirections) {
      EXPECT_LE(ledger.reserved(0, t, d), ledger.capacity(0, t, d));
    }
  }
}

// --- Concurrent planner determinism ----------------------------------------

std::vector<std::vector<Demand>> tenant_jobs(std::uint32_t tiles) {
  // 6 jobs x 24 demands, seeded: enough overlap that some precomputed
  // routes collide at commit time (exercising the replan fallback).
  std::vector<std::vector<Demand>> jobs;
  Rng rng{0xb0b5u};
  for (std::size_t j = 0; j < 6; ++j) {
    std::vector<Demand> demands;
    for (std::size_t i = 0; i < 24; ++i) {
      Demand d;
      d.src = GlobalTile{0, static_cast<TileId>(rng.uniform_index(tiles))};
      do {
        d.dst = GlobalTile{0, static_cast<TileId>(rng.uniform_index(tiles))};
      } while (d.dst == d.src);
      d.wavelengths = 1 + static_cast<std::uint32_t>(rng.uniform_index(2));
      demands.push_back(d);
    }
    jobs.push_back(std::move(demands));
  }
  return jobs;
}

void release_everything(Fabric& fab) {
  for (fabric::CircuitId id : fab.circuit_ids()) fab.disconnect(id);
}

TEST(ConcurrentPlanner, BitIdenticalAcrossThreadCounts) {
  FabricConfig config = grid_config(16, 16, 16);
  const auto jobs = tenant_jobs(16 * 16);

  std::vector<ConcurrentPlanResult> results;
  std::vector<std::uint64_t> digests;
  for (unsigned threads : {1u, 2u, 8u}) {
    Fabric fab{config};
    ConcurrentPlanResult r = plan_jobs(fab, jobs, RouteOptions{}, threads);
    digests.push_back(fab.ledger_digest());
    release_everything(fab);
    results.push_back(std::move(r));
  }

  const ConcurrentPlanResult& base = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    const ConcurrentPlanResult& r = results[i];
    EXPECT_EQ(digests[i], digests.front()) << "post-plan ledgers diverged";
    ASSERT_EQ(r.reports.size(), base.reports.size());
    for (std::size_t j = 0; j < base.reports.size(); ++j) {
      ASSERT_EQ(r.reports[j].placed.size(), base.reports[j].placed.size()) << "job " << j;
      for (std::size_t k = 0; k < base.reports[j].placed.size(); ++k) {
        EXPECT_EQ(r.reports[j].placed[k].demand, base.reports[j].placed[k].demand);
      }
      ASSERT_EQ(r.reports[j].failed.size(), base.reports[j].failed.size()) << "job " << j;
      for (std::size_t k = 0; k < base.reports[j].failed.size(); ++k) {
        EXPECT_EQ(r.reports[j].failed[k], base.reports[j].failed[k]);
      }
      EXPECT_EQ(r.reports[j].mzis_programmed, base.reports[j].mzis_programmed);
      EXPECT_EQ(r.reports[j].reconfig_latency, base.reports[j].reconfig_latency);
    }
    // Every stat except overlay_rejected (explicitly diagnostic) is part of
    // the determinism contract.
    EXPECT_EQ(r.stats.jobs, base.stats.jobs);
    EXPECT_EQ(r.stats.demands, base.stats.demands);
    EXPECT_EQ(r.stats.routes_precomputed, base.stats.routes_precomputed);
    EXPECT_EQ(r.stats.fast_path_commits, base.stats.fast_path_commits);
    EXPECT_EQ(r.stats.replans, base.stats.replans);
  }
}

TEST(ConcurrentPlanner, MatchesSequentialPlannerWithAmpleCapacity) {
  // With lanes to spare, no commit can invalidate a precomputed route, so
  // the concurrent result must equal planning each job sequentially.
  FabricConfig config = grid_config(8, 8, 4096);
  const auto jobs = tenant_jobs(8 * 8);

  Fabric concurrent_fab{config};
  const ConcurrentPlanResult conc = plan_jobs(concurrent_fab, jobs, RouteOptions{}, 4);

  Fabric seq_fab{config};
  CircuitPlanner planner{seq_fab};
  std::vector<PlanReport> seq;
  seq.reserve(jobs.size());
  for (const auto& job : jobs) seq.push_back(planner.place_all(job));

  EXPECT_EQ(concurrent_fab.ledger_digest(), seq_fab.ledger_digest());
  ASSERT_EQ(conc.reports.size(), seq.size());
  for (std::size_t j = 0; j < seq.size(); ++j) {
    ASSERT_EQ(conc.reports[j].placed.size(), seq[j].placed.size()) << "job " << j;
    for (std::size_t k = 0; k < seq[j].placed.size(); ++k) {
      EXPECT_EQ(conc.reports[j].placed[k].demand, seq[j].placed[k].demand);
    }
    EXPECT_EQ(conc.reports[j].failed.size(), seq[j].failed.size());
    EXPECT_EQ(conc.reports[j].mzis_programmed, seq[j].mzis_programmed);
    EXPECT_EQ(conc.reports[j].reconfig_latency, seq[j].reconfig_latency);
  }
  EXPECT_EQ(conc.stats.fast_path_commits, conc.stats.routes_precomputed)
      << "ample capacity: every precomputed route must commit on the fast path";
}

// --- Per-job atomicity (atomic_jobs) ---------------------------------------

// On a 1x4 wafer with one lane per edge, two identical demands cannot both
// place: the second starves.  Under atomic_jobs the whole job must roll
// back, leaving the ledger exactly as if it had never been attempted.
TEST(ConcurrentPlanner, AtomicJobRollsBackExactly) {
  const FabricConfig config = grid_config(1, 4, 1);
  const Demand edge{{0, 0}, {0, 1}, 1};

  Fabric fab{config};
  const std::uint64_t pristine = fab.ledger_digest();

  PlanJobsOptions opts;
  opts.atomic_jobs = true;
  const ConcurrentPlanResult r = plan_jobs(fab, {{edge, edge}}, opts);

  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_TRUE(r.reports[0].placed.empty()) << "partial placement leaked";
  EXPECT_EQ(r.reports[0].failed.size(), 2u) << "the whole demand set is failed";
  EXPECT_EQ(r.reports[0].mzis_programmed, 0u);
  EXPECT_EQ(r.stats.jobs_rolled_back, 1u);
  EXPECT_EQ(fab.ledger_digest(), pristine)
      << "rollback must leave the lane ledger bit-identical";
}

TEST(ConcurrentPlanner, NonAtomicJobKeepsPartialPlacement) {
  const FabricConfig config = grid_config(1, 4, 1);
  const Demand edge{{0, 0}, {0, 1}, 1};

  Fabric fab{config};
  const std::uint64_t pristine = fab.ledger_digest();
  const ConcurrentPlanResult r = plan_jobs(fab, {{edge, edge}}, PlanJobsOptions{});

  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_EQ(r.reports[0].placed.size(), 1u);
  EXPECT_EQ(r.reports[0].failed.size(), 1u);
  EXPECT_EQ(r.stats.jobs_rolled_back, 0u);
  EXPECT_NE(fab.ledger_digest(), pristine) << "the surviving circuit holds lanes";
}

// A rolled-back job releases its lanes before later jobs commit (Phase B is
// ascending), so a successor contending for the same edge still places.
TEST(ConcurrentPlanner, RollbackFreesLanesForLaterJobs) {
  const FabricConfig config = grid_config(1, 4, 1);
  const Demand edge{{0, 0}, {0, 1}, 1};

  Fabric fab{config};
  PlanJobsOptions opts;
  opts.atomic_jobs = true;
  const ConcurrentPlanResult r = plan_jobs(fab, {{edge, edge}, {edge}}, opts);

  ASSERT_EQ(r.reports.size(), 2u);
  EXPECT_TRUE(r.reports[0].placed.empty()) << "job 0 rolls back";
  ASSERT_EQ(r.reports[1].placed.size(), 1u) << "job 1 takes the freed lane";
  EXPECT_TRUE(r.reports[1].failed.empty());
  EXPECT_EQ(r.stats.jobs_rolled_back, 1u);
}

}  // namespace
}  // namespace lp::routing
