#include <gtest/gtest.h>

#include "core/photonic_server.hpp"

namespace lp::core {
namespace {

TEST(PhotonicServer, ConnectByAcceleratorId) {
  PhotonicServer server{8};
  auto id = server.connect(0, 5, 4);
  ASSERT_TRUE(id.ok()) << id.error().message;
  EXPECT_NEAR(server.bandwidth_between(0, 5).to_gbps(), 4 * 224.0, 1e-6);
  EXPECT_NEAR(server.bandwidth_between(5, 0).to_gbps(), 0.0, 1e-12)
      << "circuits are unidirectional";
  server.disconnect(id.value());
}

TEST(PhotonicServer, RejectsOutOfRange) {
  PhotonicServer server{8};
  EXPECT_FALSE(server.connect(0, 8, 1).ok());
  EXPECT_FALSE(server.connect(9, 0, 1).ok());
}

TEST(PhotonicServer, ProvisionRingAllEdges) {
  PhotonicServer server{8};
  const std::vector<std::uint32_t> order{0, 1, 2, 3, 4, 5, 6, 7};
  auto ring = server.provision_ring(order, 16);
  ASSERT_TRUE(ring.ok()) << ring.error().message;
  EXPECT_EQ(ring.value().size(), 8u);
  // Every edge carries the full redirected bandwidth.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_NEAR(
        server.bandwidth_between(order[i], order[(i + 1) % order.size()]).to_gBps(),
        448.0, 1e-6);
  }
  EXPECT_NEAR(server.tx_utilization(), 1.0, 1e-12) << "all lasers committed";
  server.release(ring.value());
  EXPECT_NEAR(server.tx_utilization(), 0.0, 1e-12);
  EXPECT_EQ(server.fabric().active_circuits(), 0u);
}

TEST(PhotonicServer, RingFailureRollsBack) {
  PhotonicServer server{4};
  // Consume accelerator 2's Tx budget so the ring cannot complete.
  auto hog = server.connect(2, 0, 16);
  ASSERT_TRUE(hog.ok());
  auto ring = server.provision_ring({0, 1, 2, 3}, 4);
  EXPECT_FALSE(ring.ok());
  // Only the hog circuit remains.
  EXPECT_EQ(server.fabric().active_circuits(), 1u);
  server.disconnect(hog.value());
}

TEST(PhotonicServer, BandwidthMatrixShape) {
  PhotonicServer server{4};
  ASSERT_TRUE(server.connect(1, 3, 2).ok());
  const auto matrix = server.bandwidth_matrix_gBps();
  ASSERT_EQ(matrix.size(), 16u);
  EXPECT_NEAR(matrix[1 * 4 + 3], 2 * 28.0, 1e-6);  // 2 x 224 Gbps = 56 GB/s
  EXPECT_NEAR(matrix[3 * 4 + 1], 0.0, 1e-12);
  double sum = 0.0;
  for (double v : matrix) sum += v;
  EXPECT_NEAR(sum, 56.0, 1e-6) << "only one circuit live";
}

TEST(PhotonicServer, RedirectionChangesMatrix) {
  // The paper's core capability at API level: tear down one neighbor's
  // circuits, re-aim at another, full bandwidth follows.
  PhotonicServer server{8};
  auto first = server.connect(0, 1, 16);
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(server.bandwidth_between(0, 1).to_gBps(), 448.0, 1e-6);
  server.disconnect(first.value());
  // Stale entries in the pair table are pruned via release().
  server.release({});
  auto second = server.connect(0, 7, 16);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_NEAR(server.bandwidth_between(0, 7).to_gBps(), 448.0, 1e-6);
}

}  // namespace
}  // namespace lp::core
