// Tests for the collective autotuner (collective/autotuner.hpp).
//
// Three layers:
//   * Autotuner.*       — calibration (predict == measured cost for every
//                         op x algorithm x group size x message size),
//                         tie-break order, and decision-cache semantics.
//   * AutotunerSweep.*  — the differential harness the tentpole contract
//                         demands: sweep 1 KB..10 GB x slice shapes x
//                         healthy/degraded, simulate every candidate with
//                         the flow simulator, and fail on any pick whose
//                         measured cost exceeds the documented tolerance.
//                         Plus bit-identical decisions at 1/2/8 threads.
//   * TunerWiring.*     — the tuner actually steering runtime::TrainingRun
//                         and serve::ServingSim.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "collective/autotuner.hpp"
#include "lightpath/types.hpp"
#include "runtime/training_run.hpp"
#include "serve/serving_sim.hpp"
#include "sim/flow_sim.hpp"
#include "util/parallel.hpp"

namespace lp::coll {
namespace {

std::vector<topo::TpuId> group(std::size_t m) {
  std::vector<topo::TpuId> ids;
  ids.reserve(m);
  for (std::size_t i = 0; i < m; ++i) ids.push_back(static_cast<topo::TpuId>(100 + i));
  return ids;
}

/// The measured-cost convention from the autotuner header: flow-simulated
/// schedule time plus the per-send software overhead.
Duration measure(const Autotuner& tuner, CollOp op, Algorithm algo,
                 const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
                 Duration reconfig) {
  const Schedule sched = tuner.build(op, algo, members, n, rate, reconfig);
  const sim::FlowSimulator fsim{rate};
  return measured_cost(fsim.run(sched).total, sched, tuner.params().alpha);
}

// ---------------------------------------------------------------------------
// Calibration: predict() must reproduce the flow-simulated cost.
// ---------------------------------------------------------------------------

TEST(Autotuner, PredictionMatchesFlowSimulatedCost) {
  const Autotuner tuner;
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);
  const std::size_t sizes[] = {2, 3, 5, 8, 31, 56};
  const DataSize messages[] = {DataSize::kib(1.0), DataSize::mib(1.0),
                               DataSize::mib(512.0)};
  const CollOp ops[] = {CollOp::kReduceScatter, CollOp::kAllGather, CollOp::kAllReduce,
                        CollOp::kBroadcast,     CollOp::kAllToAll,  CollOp::kTransfer};

  int checked = 0;
  for (const CollOp op : ops) {
    for (const std::size_t m : sizes) {
      const std::vector<topo::TpuId> members = group(m);
      for (const DataSize n : messages) {
        for (const Algorithm algo : Autotuner::candidates(op)) {
          const Duration predicted = tuner.predict(op, algo, m, n, rate, reconfig);
          const Duration measured = measure(tuner, op, algo, members, n, rate, reconfig);
          EXPECT_NEAR(predicted.to_seconds(), measured.to_seconds(),
                      1e-9 * measured.to_seconds() + 1e-15)
              << to_string(op) << "/" << to_string(algo) << " m=" << m
              << " n=" << n.to_bytes() << "B";
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(checked, 6 * 3 * 2 * 2);  // every op x size x message x >=2 algos
}

TEST(Autotuner, PredictionCoversDegradedSingleLambdaRate) {
  // Post-fault elastic bridges run at half rate with the same reconfig; the
  // calibration must hold there too (it is the regime the TrainingRun
  // re-decides schedules in).
  const Autotuner tuner;
  const Bandwidth rate = Bandwidth::gBps(37.5);
  const Duration reconfig = Duration::micros(3.7);
  for (const std::size_t m : {3u, 7u, 55u}) {
    const std::vector<topo::TpuId> members = group(m);
    for (const Algorithm algo : Autotuner::candidates(CollOp::kAllReduce)) {
      const DataSize n = DataSize::mib(64.0);
      const Duration predicted = tuner.predict(CollOp::kAllReduce, algo, m, n, rate, reconfig);
      const Duration measured =
          measure(tuner, CollOp::kAllReduce, algo, members, n, rate, reconfig);
      EXPECT_NEAR(predicted.to_seconds(), measured.to_seconds(),
                  1e-9 * measured.to_seconds())
          << to_string(algo) << " m=" << m;
    }
  }
}

// ---------------------------------------------------------------------------
// Tie-break: deterministic total order (cost, rank, name).
// ---------------------------------------------------------------------------

TEST(Autotuner, TwoMemberAllToAllTiesBreakToRing) {
  // With m = 2 the ring and rotation all-to-all degenerate to the same
  // single transfer: alpha + r + T(n) on both paths, an exact cost tie.
  // The fixed rank order (kRing = 0 < kRotation = 3) must decide it.
  Autotuner tuner;
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);
  const DataSize n = DataSize::mib(4.0);
  const Duration ring = tuner.predict(CollOp::kAllToAll, Algorithm::kRing, 2, n, rate, reconfig);
  const Duration rotation =
      tuner.predict(CollOp::kAllToAll, Algorithm::kRotation, 2, n, rate, reconfig);
  ASSERT_EQ(ring, rotation);  // exact tie, bit for bit

  const Decision d = tuner.pick(CollOp::kAllToAll, n, group(2), rate, reconfig, 0);
  EXPECT_EQ(d.algo, Algorithm::kRing);
}

TEST(Autotuner, PickMatchesManualMinOverCandidatesInAnyOrder) {
  // The documented comparator — (cost, algorithm_rank, name) — applied to
  // the candidate list in *reverse* order must select the same algorithm
  // pick() returns: enumeration order cannot leak into the decision.
  Autotuner tuner;
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);
  const CollOp ops[] = {CollOp::kReduceScatter, CollOp::kAllGather, CollOp::kAllReduce,
                        CollOp::kBroadcast,     CollOp::kAllToAll,  CollOp::kTransfer};
  for (const CollOp op : ops) {
    for (const DataSize n : {DataSize::kib(2.0), DataSize::mib(16.0), DataSize::gib(1.0)}) {
      // Evaluate at the bucket representative, exactly as pick() does.
      const DataSize rep = Autotuner::bucket_representative(Autotuner::size_bucket(n));
      std::vector<Algorithm> order = Autotuner::candidates(op);
      std::reverse(order.begin(), order.end());
      bool first = true;
      Algorithm best{};
      Duration best_cost{};
      for (const Algorithm algo : order) {
        const Duration cost = tuner.predict(op, algo, 8, rep, rate, reconfig);
        const bool better =
            first || cost < best_cost ||
            (cost == best_cost && (algorithm_rank(algo) < algorithm_rank(best) ||
                                   (algorithm_rank(algo) == algorithm_rank(best) &&
                                    std::strcmp(to_string(algo), to_string(best)) < 0)));
        if (better) {
          best = algo;
          best_cost = cost;
          first = false;
        }
      }
      const Decision d = tuner.pick(op, n, group(8), rate, reconfig, /*epoch=*/7);
      EXPECT_EQ(d.algo, best) << to_string(op) << " n=" << n.to_bytes();
      EXPECT_EQ(d.predicted, best_cost);
    }
  }
}

// ---------------------------------------------------------------------------
// Decision cache.
// ---------------------------------------------------------------------------

TEST(Autotuner, CacheHitsOnSameBucketAndMissesAcrossEpochs) {
  Autotuner tuner;
  const std::vector<topo::TpuId> members = group(8);
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);

  // 1000 and 1010 bytes share a quarter-octave bucket ([861, 1024)).
  const Decision a = tuner.pick(CollOp::kAllReduce, DataSize::bytes(1000.0), members,
                                rate, reconfig, /*epoch=*/1);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_EQ(tuner.misses(), 1u);

  const Decision b = tuner.pick(CollOp::kAllReduce, DataSize::bytes(1010.0), members,
                                rate, reconfig, /*epoch=*/1);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(b.algo, a.algo);
  EXPECT_EQ(b.predicted, a.predicted);  // bucket-canonical: identical decision
  EXPECT_EQ(tuner.hits(), 1u);

  // Fabric epoch bump makes the entry unreachable.
  const Decision c = tuner.pick(CollOp::kAllReduce, DataSize::bytes(1000.0), members,
                                rate, reconfig, /*epoch=*/2);
  EXPECT_FALSE(c.cache_hit);

  // Different member list (degraded survivor set) -> different fingerprint.
  const Decision d = tuner.pick(CollOp::kAllReduce, DataSize::bytes(1000.0), group(7),
                                rate, reconfig, /*epoch=*/1);
  EXPECT_FALSE(d.cache_hit);

  // Different op, same everything else.
  const Decision e = tuner.pick(CollOp::kBroadcast, DataSize::bytes(1000.0), members,
                                rate, reconfig, /*epoch=*/1);
  EXPECT_FALSE(e.cache_hit);

  EXPECT_EQ(tuner.hits(), 1u);
  EXPECT_EQ(tuner.misses(), 4u);

  tuner.clear();
  EXPECT_EQ(tuner.hits(), 0u);
  EXPECT_EQ(tuner.misses(), 0u);
  const Decision f = tuner.pick(CollOp::kAllReduce, DataSize::bytes(1000.0), members,
                                rate, reconfig, /*epoch=*/1);
  EXPECT_FALSE(f.cache_hit);
  EXPECT_EQ(f.algo, a.algo);
}

TEST(Autotuner, CachedDecisionEqualsFreshEvaluation) {
  // A decision served from cache must be indistinguishable from one
  // computed by a fresh tuner: no insertion-history dependence.
  Autotuner warm;
  Autotuner cold;
  const std::vector<topo::TpuId> members = group(31);
  const Bandwidth rate = Bandwidth::gBps(37.5);
  const Duration reconfig = Duration::micros(3.7);

  // Warm the cache with a different size in the same bucket.
  const DataSize warm_size = DataSize::mib(3.0);
  const DataSize probe = warm_size * 1.02;
  ASSERT_EQ(Autotuner::size_bucket(warm_size), Autotuner::size_bucket(probe));
  (void)warm.pick(CollOp::kReduceScatter, warm_size, members, rate, reconfig, 5);

  const Decision cached = warm.pick(CollOp::kReduceScatter, probe, members, rate, reconfig, 5);
  const Decision fresh = cold.pick(CollOp::kReduceScatter, probe, members, rate, reconfig, 5);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(cached.algo, fresh.algo);
  EXPECT_EQ(cached.predicted, fresh.predicted);
}

// ---------------------------------------------------------------------------
// Differential sweep: mispredictions are test failures.
// ---------------------------------------------------------------------------

struct SweepTopology {
  const char* name;
  std::vector<topo::TpuId> members;
  Bandwidth rate;
  std::uint64_t epoch;
};

std::vector<SweepTopology> sweep_topologies() {
  // Three healthy slice shapes at the 2-lambda circuit rate, and three
  // degraded survivor sets (non-power-of-two, including the degenerate 2-
  // and 3-member rings) at the 1-lambda elastic-bridge rate.
  return {
      {"healthy-8", group(8), Bandwidth::gBps(75.0), 0},
      {"healthy-16", group(16), Bandwidth::gBps(75.0), 0},
      {"healthy-32", group(32), Bandwidth::gBps(75.0), 0},
      {"degraded-7", group(7), Bandwidth::gBps(37.5), 1},
      {"degraded-3", group(3), Bandwidth::gBps(37.5), 1},
      {"degraded-2", group(2), Bandwidth::gBps(37.5), 1},
  };
}

std::vector<DataSize> sweep_sizes() {
  // 1 KiB to 4 GiB in quarter-decade-ish steps, plus the contract's 10 GB
  // upper bound.
  std::vector<DataSize> sizes;
  for (double b = 1024.0; b <= 4.0 * 1024.0 * 1024.0 * 1024.0; b *= 4.0) {
    sizes.push_back(DataSize::bytes(b));
  }
  sizes.push_back(DataSize::bytes(1e10));
  return sizes;
}

const CollOp kAllOps[] = {CollOp::kReduceScatter, CollOp::kAllGather,
                          CollOp::kAllReduce,     CollOp::kBroadcast,
                          CollOp::kAllToAll,      CollOp::kTransfer};

TEST(AutotunerSweep, DifferentialValidationHasZeroMispredictions) {
  Autotuner tuner;
  const Duration reconfig = Duration::micros(3.7);
  const double tol_rel = tuner.params().tolerance_rel;
  const Duration tol_abs = tuner.params().tolerance_abs;

  int points = 0;
  for (const SweepTopology& topo : sweep_topologies()) {
    for (const CollOp op : kAllOps) {
      for (const DataSize n : sweep_sizes()) {
        const Decision d = tuner.pick(op, n, topo.members, topo.rate, reconfig, topo.epoch);
        const Duration picked =
            measure(tuner, op, d.algo, topo.members, n, topo.rate, reconfig);
        Duration best = Duration::infinite();
        Algorithm best_algo = d.algo;
        for (const Algorithm algo : Autotuner::candidates(op)) {
          const Duration cost = measure(tuner, op, algo, topo.members, n, topo.rate, reconfig);
          if (cost < best) {
            best = cost;
            best_algo = algo;
          }
        }
        EXPECT_LE(picked.to_seconds(),
                  best.to_seconds() * (1.0 + tol_rel) + tol_abs.to_seconds())
            << "MISPREDICTION: " << topo.name << " " << to_string(op)
            << " n=" << n.to_bytes() << "B picked " << to_string(d.algo)
            << " but " << to_string(best_algo) << " is faster beyond tolerance";
        ++points;
      }
    }
  }
  // 6 topologies x 6 ops x (12 geometric sizes + 10 GB).
  EXPECT_EQ(points, 6 * 6 * 13);
}

TEST(AutotunerSweep, DecisionsBitIdenticalAtAnyThreadCount) {
  // One shared tuner, the full sweep grid evaluated via parallel_for, the
  // per-point decisions folded in point order: the digest must not depend
  // on the thread count (1, 2, 8) even though threads race on the decision
  // cache.
  const std::vector<SweepTopology> topologies = sweep_topologies();
  const std::vector<DataSize> sizes = sweep_sizes();
  const Duration reconfig = Duration::micros(3.7);

  struct Point {
    const SweepTopology* topo;
    CollOp op;
    DataSize n;
  };
  std::vector<Point> grid;
  for (const SweepTopology& topo : topologies) {
    for (const CollOp op : kAllOps) {
      for (const DataSize n : sizes) grid.push_back({&topo, op, n});
    }
  }

  std::uint64_t digests[3] = {};
  const unsigned thread_counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    util::ThreadPool pool{thread_counts[t]};
    Autotuner tuner;  // shared across all tasks in this round
    std::vector<Decision> decisions(grid.size());
    util::parallel_for(
        grid.size(),
        [&](std::size_t i) {
          const Point& p = grid[i];
          decisions[i] =
              tuner.pick(p.op, p.n, p.topo->members, p.topo->rate, reconfig, p.topo->epoch);
        },
        &pool);
    std::uint64_t digest = 0x1234567;
    for (const Decision& d : decisions) {
      digest = fabric::hash_mix(digest, static_cast<std::uint64_t>(d.algo));
      std::uint64_t bits = 0;
      const double s = d.predicted.to_seconds();
      static_assert(sizeof(bits) == sizeof(s));
      std::memcpy(&bits, &s, sizeof(bits));
      digest = fabric::hash_mix(digest, bits);
    }
    digests[t] = digest;
    // Every grid point was answered, from cache or fresh.
    EXPECT_EQ(tuner.hits() + tuner.misses(), grid.size());
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

// ---------------------------------------------------------------------------
// Wiring: the tuner steering the runtime and serving layers.
// ---------------------------------------------------------------------------

TEST(TunerWiring, TrainingRunPicksRingForDefaultBuckets) {
  // 64 MiB buckets over the 56-member ring: beta dominates, the ring's
  // (m-1)/m bandwidth optimality wins, and the live schedule must be the
  // elastic ring the pre-autotuner runtime always built (bit-compatible
  // with the seed behavior).
  runtime::RunConfig config;
  config.iterations = 1;
  config.mtbf_hours = 0.0;
  const runtime::TrainingRun run{config};
  EXPECT_EQ(run.bucket_algorithm(), Algorithm::kRing);
  const std::size_t m = run.ring_members().size();
  ASSERT_EQ(m, 56u);
  EXPECT_EQ(run.schedule().phases.size(), 2 * (m - 1));
}

TEST(TunerWiring, TrainingRunPicksLogDepthForSmallBuckets) {
  // 64 KiB buckets flip the trade: alpha x 110 ring steps dwarfs the wire
  // time and the tuner must switch to a log-depth schedule (halving-
  // doubling: 2 x (5 + 1 fold) phases for m = 56 = 2^5 + 24).
  runtime::RunConfig config;
  config.iterations = 1;
  config.mtbf_hours = 0.0;
  config.iteration.bucket_bytes = DataSize::kib(64.0);
  const runtime::TrainingRun run{config};
  EXPECT_EQ(run.bucket_algorithm(), Algorithm::kHalvingDoubling);
  EXPECT_EQ(run.schedule().phases.size(), 12u);
  EXPECT_EQ(run.tuner().misses(), 1u);
}

TEST(TunerWiring, ServingSimRoutesExpertsAndKvThroughTuner) {
  serve::ServingParams p;
  p.replicas = 4;
  p.tiles_per_replica = 4;
  p.batch_capacity = 16;
  p.traffic.arrival_rate = 50e3;
  p.horizon = Duration::millis(5.0);
  p.drain = Duration::millis(20.0);
  p.mtbf_hours = 0.0;
  p.host.max_peers = 4;
  p.expert_peers = 2;

  const serve::ServingReport r = serve::run_serving(p);
  ASSERT_GT(r.rounds, 0u);
  // The per-round expert exchange volume sits far below the ring/rotation
  // crossover, so every decode round should ride the standing ring.
  EXPECT_EQ(r.expert_ring_rounds, r.rounds);
  // KV payloads (prompt-length x bytes/token) sit at or above the
  // direct/striped crossover, so the tuner must stripe at least some of
  // them — and never more than happened.
  ASSERT_GT(r.kv_migrations, 0u);
  EXPECT_GT(r.kv_striped, 0u);
  EXPECT_LE(r.kv_striped, r.kv_migrations);
  EXPECT_EQ(r.send_failures, 0u);

  // Tuner routing is part of the determinism contract: digests still match.
  const serve::ServingReport again = serve::run_serving(p);
  EXPECT_EQ(r.digest, again.digest);
  EXPECT_EQ(r.kv_striped, again.kv_striped);
}

}  // namespace
}  // namespace lp::coll
