// Contract tests for the calendar-queue EventEngine, including the
// randomized differential suite against the reference binary-heap
// EventQueue.  The two implementations must be observably identical:
// dispatch order, now(), pending counts, run/run_until return values.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_engine.hpp"
#include "sim/event_queue.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lp::sim {
namespace {

TEST(EventEngine, RunsInTimestampOrder) {
  EventEngine q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(2.0), [&] { order.push_back(2); });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint::at_seconds(3.0), [&] { order.push_back(3); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventEngine, FifoTieBreakAtEqualTime) {
  EventEngine q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(2); });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// FIFO tie-break must survive bucket-array resizes: schedule enough events
// to force several grows, with ties both clustered and straddling whatever
// bucket boundaries the adaptive width lands on.
TEST(EventEngine, FifoTieBreakAcrossBucketBoundaries) {
  EventEngine q;
  std::vector<int> order;
  constexpr int kGroups = 200;
  constexpr int kPerGroup = 4;
  // Interleave: for each group time t_g = g * 0.001, schedule one event per
  // round so equal-time events are scheduled far apart in seq space.
  for (int round = 0; round < kPerGroup; ++round) {
    for (int g = 0; g < kGroups; ++g) {
      q.schedule_at(TimePoint::at_seconds(g * 1e-3),
                    [&order, g, round] { order.push_back(g * kPerGroup + round); });
    }
  }
  EXPECT_GT(q.bucket_count(), 16u) << "test should actually exercise a resize";
  EXPECT_EQ(q.run(), static_cast<std::size_t>(kGroups * kPerGroup));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kGroups * kPerGroup));
  for (int g = 0; g < kGroups; ++g) {
    for (int round = 0; round < kPerGroup; ++round) {
      EXPECT_EQ(order[static_cast<std::size_t>(g * kPerGroup + round)],
                g * kPerGroup + round);
    }
  }
}

TEST(EventEngine, CallbacksCanSchedule) {
  EventEngine q;
  int fired = 0;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] {
    ++fired;
    q.schedule_in(Duration::seconds(1.0), [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 2.0);
}

// Scheduling at exactly now() from inside a callback: the new event runs in
// the same run(), after every event already pending at that timestamp.
TEST(EventEngine, ScheduleAtExactlyNowFromCallback) {
  EventEngine q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] {
    order.push_back(1);
    q.schedule_at(q.now(), [&] { order.push_back(3); });
  });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 1.0);
}

TEST(EventEngine, SchedulingInThePastRunsNext) {
  EventEngine q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(5.0), [&] {
    order.push_back(1);
    // Past event: becomes the queue minimum, dispatched next (matching the
    // reference heap, which orders purely by (when, seq)).
    q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(2); });
  });
  q.schedule_at(TimePoint::at_seconds(6.0), [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngine, RunUntilStopsAtDeadline) {
  EventEngine q;
  int fired = 0;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { ++fired; });
  q.schedule_at(TimePoint::at_seconds(5.0), [&] { ++fired; });
  EXPECT_EQ(q.run_until(TimePoint::at_seconds(2.0)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

// An event timestamped exactly at the deadline runs — including one
// scheduled *at* the deadline by another deadline event.
TEST(EventEngine, RunUntilEqualityAtDeadline) {
  EventEngine q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(2.0), [&] {
    order.push_back(1);
    q.schedule_at(TimePoint::at_seconds(2.0), [&] { order.push_back(2); });
  });
  q.schedule_at(TimePoint::at_seconds(2.0 + 1e-9), [&] { order.push_back(9); });
  EXPECT_EQ(q.run_until(TimePoint::at_seconds(2.0)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 2.0);
}

TEST(EventEngine, RunMaxEventsStopsEarly) {
  EventEngine q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(TimePoint::at_seconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.run(), 6u);
}

TEST(EventEngine, LargeDrainIsSorted) {
  EventEngine q;
  Rng rng{42};
  std::vector<double> times;
  constexpr std::size_t kN = 20000;
  std::vector<double> dispatched;
  dispatched.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    // Mixed scales: microsecond clusters plus sparse far-future outliers,
    // the shape that stresses the adaptive bucket width.
    double t = rng.uniform() < 0.95 ? rng.uniform(0.0, 1e-2) : rng.uniform(10.0, 1e3);
    q.schedule_at(TimePoint::at_seconds(t),
                  [&dispatched, &q] { dispatched.push_back(q.now().to_seconds()); });
    times.push_back(t);
  }
  EXPECT_EQ(q.run(), kN);
  ASSERT_EQ(dispatched.size(), kN);
  for (std::size_t i = 1; i < kN; ++i) {
    ASSERT_LE(dispatched[i - 1], dispatched[i]) << "out of order at " << i;
  }
}

TEST(EventEngine, OversizedHandlerFallsBackToHeap) {
  EventEngine q;
  // A capture larger than InlineHandler::kInlineBytes must still work.
  struct Big {
    double pad[12];
  };
  Big big{};
  big.pad[0] = 7.0;
  double seen = 0.0;
  q.schedule_at(TimePoint::at_seconds(1.0), [big, &seen] { seen = big.pad[0]; });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 7.0);
}

TEST(EventEngine, DestructorReleasesPendingHandlers) {
  // Pending events with owning captures must be destroyed with the engine
  // (ASan would flag the leak).
  auto shared = std::make_shared<int>(5);
  {
    EventEngine q;
    q.schedule_at(TimePoint::at_seconds(1.0), [shared] { (void)*shared; });
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

// --- Randomized differential suite: engine vs reference heap ---------------
//
// Each case drives both implementations through an identical randomized
// script — schedules at clustered/duplicated/far-out times, reentrant
// schedules (including at exactly now()), partial runs, run_until at an
// existing timestamp — and requires identical dispatch traces.

struct DiffCase {
  std::vector<int> order;
  std::vector<double> when;
  double final_now{0.0};
  std::size_t processed{0};
  std::size_t leftover{0};

  bool operator==(const DiffCase&) const = default;
};

template <typename Queue>
DiffCase run_case(std::uint64_t seed) {
  Rng rng{seed};
  Queue q;
  DiffCase out;
  int next_id = 0;

  // Timestamps drawn from a small discrete grid so duplicates are common.
  const double scale = rng.uniform() < 0.5 ? 1e-6 : 1.0;
  auto draw_time = [&rng, scale] {
    return static_cast<double>(rng.uniform_index(64)) * scale;
  };

  // Reentrant children: each event may schedule up to two children at
  // now(), now() + grid step, or a far-future point, decided by a fork of
  // the case RNG keyed on the event id (identical across implementations).
  std::function<void(int, int)> body = [&](int id, int depth) {
    out.order.push_back(id);
    out.when.push_back(q.now().to_seconds());
    if (depth >= 3) return;
    Rng child{seed ^ (std::uint64_t{0x9e3779b97f4a7c15} *
                      static_cast<std::uint64_t>(id + 1))};
    const std::uint64_t kids = child.uniform_index(3);
    for (std::uint64_t k = 0; k < kids; ++k) {
      const int kid = next_id++;
      const double r = child.uniform();
      TimePoint t;
      if (r < 0.4) {
        t = q.now();  // exactly now: must run later this pass, FIFO order
      } else if (r < 0.8) {
        t = q.now() + Duration::seconds(static_cast<double>(child.uniform_index(8)) * scale);
      } else {
        t = TimePoint::at_seconds(q.now().to_seconds() + 100.0 * scale);
      }
      q.schedule_at(t, [&body, kid, depth] { body(kid, depth + 1); });
    }
  };

  const std::size_t roots = 8 + rng.uniform_index(48);
  for (std::size_t i = 0; i < roots; ++i) {
    const int id = next_id++;
    q.schedule_at(TimePoint::at_seconds(draw_time()),
                  [&body, id] { body(id, 0); });
  }

  // Phase 1: partial run.
  out.processed += q.run(rng.uniform_index(roots + 1));
  // Phase 2: run_until a timestamp that exists in the grid (deadline
  // equality exercised with high probability).
  out.processed += q.run_until(TimePoint::at_seconds(draw_time()));
  // Phase 3: a second wave of schedules, some in the "past".
  const std::size_t wave = rng.uniform_index(16);
  for (std::size_t i = 0; i < wave; ++i) {
    const int id = next_id++;
    q.schedule_at(TimePoint::at_seconds(draw_time()),
                  [&body, id] { body(id, 0); });
  }
  // Phase 4: drain.
  out.processed += q.run();
  out.final_now = q.now().to_seconds();
  out.leftover = q.pending();
  return out;
}

TEST(EventEngineDifferential, MatchesReferenceHeapOver200Cases) {
  for (std::uint64_t c = 0; c < 220; ++c) {
    const std::uint64_t seed = util::task_seed(0xd1ffe2e4, c);
    const DiffCase heap = run_case<EventQueue>(seed);
    const DiffCase engine = run_case<EventEngine>(seed);
    ASSERT_EQ(heap.order, engine.order) << "case " << c;
    ASSERT_EQ(heap.when, engine.when) << "case " << c;
    ASSERT_EQ(heap.processed, engine.processed) << "case " << c;
    ASSERT_EQ(heap.final_now, engine.final_now) << "case " << c;
    ASSERT_EQ(heap.leftover, engine.leftover) << "case " << c;
  }
}

}  // namespace
}  // namespace lp::sim
