// Compile-and-smoke test of the umbrella header: a downstream user should
// be able to include one header and touch every subsystem.
#include "lightpath_sim.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EverySubsystemReachable) {
  lp::Rng rng{1};
  EXPECT_GT(rng.uniform(), -1.0);

  const lp::phys::Mzi mzi;
  EXPECT_GT(mzi.settling_time().to_micros(), 3.0);

  lp::fabric::Fabric fab;
  EXPECT_EQ(fab.wafer(0).tile_count(), 32u);

  lp::topo::TpuCluster cluster;
  EXPECT_EQ(cluster.chip_count(), 4096);

  const lp::topo::Slice slice{0, 0, lp::topo::Coord{{0, 0, 3}},
                              lp::topo::Shape{{4, 2, 1}}};
  const auto plan = lp::coll::build_plan(slice, cluster.config().rack_shape);
  EXPECT_EQ(plan.alpha_steps(), 7);

  const lp::sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  EXPECT_EQ(fsim.run_phase({}).duration, lp::Duration::zero());

  lp::core::PhotonicServer server{8};
  EXPECT_EQ(server.accelerator_count(), 8u);

  const lp::topo::SwitchedServer sw;
  EXPECT_FALSE(sw.effective_flow_rate(8, lp::Bandwidth::zero()).is_zero());
}

}  // namespace
