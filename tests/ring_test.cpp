#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "collective/ring.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::coll {
namespace {

using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::TpuCluster;
using topo::TpuId;

TEST(RingsInDim, FullExtentStaysInSlice) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto rings = rings_in_dim(cluster, s, 0);  // X spans the rack
  ASSERT_EQ(rings.size(), 2u);                     // one per Y row
  for (const auto& ring : rings) {
    EXPECT_EQ(ring.members.size(), 4u);
    EXPECT_TRUE(ring.transit_chips.empty())
        << "full-extent rings never forward through foreigners";
    EXPECT_EQ(ring.links.size(), 4u);  // 4 cycle edges, 1 hop each
    for (const auto& l : ring.links) {
      EXPECT_EQ(l.dim, 0);
      EXPECT_EQ(l.sign, +1);
    }
  }
}

TEST(RingsInDim, PartialExtentForwardsThroughForeignChips) {
  TpuCluster cluster;
  // Y extent 2 of 4: wrap edge walks through y=2 and y=3.
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto rings = rings_in_dim(cluster, s, 1);
  ASSERT_EQ(rings.size(), 4u);  // one per X column
  for (const auto& ring : rings) {
    EXPECT_EQ(ring.members.size(), 2u);
    EXPECT_EQ(ring.transit_chips.size(), 2u) << "wrap passes y=2 and y=3";
    EXPECT_EQ(ring.links.size(), 4u);  // 1 + 3 hops
  }
}

TEST(RingsInDim, UnitExtentHasNoRings) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  EXPECT_TRUE(rings_in_dim(cluster, s, 2).empty());
}

TEST(RingsInDim, EachMemberAppearsInExactlyOneRing) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}};
  const auto rings = rings_in_dim(cluster, s, 0);
  EXPECT_EQ(rings.size(), 8u);  // 4 y x 2 z
  std::set<TpuId> seen;
  for (const auto& ring : rings) {
    for (TpuId m : ring.members) {
      EXPECT_TRUE(seen.insert(m).second) << "chip in two rings of one dim";
    }
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(SnakeRing, CoversSubGridOnce) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto ring = snake_ring(cluster, s, {0, 1}, s.offset);
  EXPECT_EQ(ring.members.size(), 8u);
  std::set<TpuId> unique(ring.members.begin(), ring.members.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SnakeRing, ConsecutiveMembersAdjacent) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 1}}};
  const auto ring = snake_ring(cluster, s, {0, 1}, s.offset);
  ASSERT_EQ(ring.members.size(), 16u);
  for (std::size_t i = 0; i + 1 < ring.members.size(); ++i) {
    const Coord a = cluster.coord_of(ring.members[i]);
    const Coord b = cluster.coord_of(ring.members[i + 1]);
    int dist = 0;
    for (std::size_t d = 0; d < topo::kDims; ++d) dist += std::abs(a[d] - b[d]);
    EXPECT_EQ(dist, 1) << "serpentine order must be grid-adjacent at step " << i;
  }
}

TEST(SnakeRing, StaysInsideSlice) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 2, 3}}, Shape{{4, 2, 1}}};
  const auto ring = snake_ring(cluster, s, {0, 1}, s.offset);
  EXPECT_TRUE(ring.transit_chips.empty());
  for (const auto& link : ring.links) {
    EXPECT_TRUE(s.contains(cluster.coord_of(link.chip)))
        << "snake links must originate inside the slice";
  }
}

TEST(SnakeRing, NoDirectedLinkUsedTwice) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 1}}};
  const auto ring = snake_ring(cluster, s, {0, 1}, s.offset);
  std::set<std::size_t> keys;
  for (const auto& link : ring.links) {
    EXPECT_TRUE(keys.insert(topo::link_key(link)).second)
        << "snake ring self-congests on a directed link";
  }
}

TEST(SnakeRings, OnePerRemainingCoordinate) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 2, 2}}};
  // Snake over X,Y; one ring per z layer.
  const auto rings = snake_rings(cluster, s, {0, 1});
  EXPECT_EQ(rings.size(), 2u);
  for (const auto& ring : rings) EXPECT_EQ(ring.members.size(), 8u);
}

TEST(SnakeRings, ThreeDimSnakeCoversEverything) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{2, 2, 2}}};
  const auto rings = snake_rings(cluster, s, {0, 1, 2});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].members.size(), 8u);
  std::set<TpuId> unique(rings[0].members.begin(), rings[0].members.end());
  EXPECT_EQ(unique.size(), 8u);
}

}  // namespace
}  // namespace lp::coll
