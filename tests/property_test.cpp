// Property-style and fuzz-style tests: random operation sequences checked
// against global invariants, and parameterized sweeps asserting the flow
// simulator agrees with the analytic cost model across slice shapes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "collective/schedule.hpp"
#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"
#include "util/rng.hpp"

namespace lp {
namespace {

using fabric::CircuitId;
using fabric::Fabric;
using fabric::GlobalTile;
using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::TpuCluster;

// --- Fabric fuzz: random connect/disconnect preserves the resource ledger ---

TEST(FabricFuzz, RandomOpsNeverLeakResources) {
  Rng rng{0xfab};
  for (int round = 0; round < 20; ++round) {
    fabric::FabricConfig config;
    config.wafer_count = 2;
    Fabric fab{config};
    fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 32);
    fab.add_fiber_link(GlobalTile{0, 15}, GlobalTile{1, 8}, 32);

    std::vector<CircuitId> live;
    for (int op = 0; op < 200; ++op) {
      if (!live.empty() && rng.bernoulli(0.4)) {
        const std::size_t pick = rng.uniform_index(live.size());
        fab.disconnect(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      const GlobalTile a{static_cast<fabric::WaferId>(rng.uniform_index(2)),
                         static_cast<fabric::TileId>(rng.uniform_index(32))};
      const GlobalTile b{static_cast<fabric::WaferId>(rng.uniform_index(2)),
                         static_cast<fabric::TileId>(rng.uniform_index(32))};
      const auto lambdas = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
      auto id = fab.connect(a, b, lambdas);
      if (id) live.push_back(id.value());
    }
    // Invariant: per-tile usage bounded at all times.
    for (fabric::WaferId w = 0; w < 2; ++w) {
      for (fabric::TileId t = 0; t < 32; ++t) {
        EXPECT_LE(fab.wafer(w).tile(t).tx_used(), 16u);
        EXPECT_LE(fab.wafer(w).tile(t).rx_used(), 16u);
      }
    }
    for (const auto& link : fab.fiber_links()) EXPECT_LE(link.used, link.fibers);

    // Tear everything down: ledger must return to zero.
    for (CircuitId id : live) fab.disconnect(id);
    EXPECT_EQ(fab.active_circuits(), 0u);
    for (fabric::WaferId w = 0; w < 2; ++w) {
      EXPECT_EQ(fab.wafer(w).total_lanes_used(), 0u) << "round " << round;
      for (fabric::TileId t = 0; t < 32; ++t) {
        EXPECT_EQ(fab.wafer(w).tile(t).tx_used(), 0u);
        EXPECT_EQ(fab.wafer(w).tile(t).rx_used(), 0u);
      }
    }
    for (const auto& link : fab.fiber_links()) EXPECT_EQ(link.used, 0u);
  }
}

TEST(FabricFuzz, LaneAccountingMatchesLiveCircuits) {
  // At any point, total lanes used equals the sum over live circuits of
  // wavelengths x hop count.
  Rng rng{0xacc};
  Fabric fab;
  std::map<CircuitId, std::uint64_t> expected_lanes;
  for (int op = 0; op < 300; ++op) {
    if (!expected_lanes.empty() && rng.bernoulli(0.35)) {
      auto it = expected_lanes.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.uniform_index(expected_lanes.size())));
      fab.disconnect(it->first);
      expected_lanes.erase(it);
    } else {
      const GlobalTile a{0, static_cast<fabric::TileId>(rng.uniform_index(32))};
      const GlobalTile b{0, static_cast<fabric::TileId>(rng.uniform_index(32))};
      auto id = fab.connect(a, b, 1 + static_cast<std::uint32_t>(rng.uniform_index(3)));
      if (id) {
        const fabric::Circuit* c = fab.circuit(id.value());
        expected_lanes[id.value()] =
            c->wavelengths * static_cast<std::uint64_t>(c->waveguide_hop_count());
      }
    }
    std::uint64_t expected = 0;
    for (const auto& [id, lanes] : expected_lanes) expected += lanes;
    ASSERT_EQ(fab.wafer(0).total_lanes_used(), expected) << "op " << op;
  }
}

// --- Slice allocator fuzz ----------------------------------------------------

TEST(AllocatorFuzz, RandomAllocReleaseKeepsOwnershipConsistent) {
  Rng rng{0xa110c};
  TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  std::vector<topo::SliceId> live;
  const std::vector<Shape> shapes{Shape{{4, 2, 1}}, Shape{{2, 2, 2}}, Shape{{4, 4, 1}},
                                  Shape{{1, 2, 2}}, Shape{{4, 4, 2}}};
  for (int op = 0; op < 400; ++op) {
    if (!live.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = rng.uniform_index(live.size());
      alloc.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      auto id = alloc.allocate(shapes[rng.uniform_index(shapes.size())]);
      if (id) live.push_back(id.value());
    }
    // Invariant: owner map and chip states agree exactly.
    std::size_t owned = 0;
    for (topo::TpuId chip = 0; chip < cluster.chip_count(); ++chip) {
      const bool has_owner = alloc.owner(chip).has_value();
      const bool allocated = cluster.state(chip) == topo::ChipState::kAllocated;
      ASSERT_EQ(has_owner, allocated) << "chip " << chip << " op " << op;
      if (has_owner) ++owned;
    }
    std::size_t expected = 0;
    for (topo::SliceId id : live)
      expected += static_cast<std::size_t>(alloc.slice(id)->chip_count());
    ASSERT_EQ(owned, expected);
    // No two live slices overlap.
    std::set<topo::TpuId> seen;
    for (topo::SliceId id : live) {
      const topo::Slice* s = alloc.slice(id);
      for (const Coord& c : s->coords()) {
        ASSERT_TRUE(seen.insert(cluster.chip_at(s->rack, c)).second);
      }
    }
  }
}

// --- Flow simulator properties -----------------------------------------------

TEST(FlowSimProps, CompletionNeverBeatsLineRate) {
  Rng rng{0xf10};
  const sim::FlowSimulator fsim{Bandwidth::gbps(100)};
  for (int round = 0; round < 50; ++round) {
    std::vector<coll::Transfer> transfers;
    const std::size_t n = 1 + rng.uniform_index(12);
    for (std::size_t i = 0; i < n; ++i) {
      coll::Transfer t;
      t.src = static_cast<topo::TpuId>(i);
      t.dst = static_cast<topo::TpuId>(i + 1);
      t.bytes = DataSize::kib(static_cast<double>(1 + rng.uniform_index(10000)));
      const std::size_t hops = 1 + rng.uniform_index(3);
      for (std::size_t h = 0; h < hops; ++h) {
        t.route.push_back(topo::DirectedLink{
            static_cast<topo::TpuId>(rng.uniform_index(8)),
            static_cast<std::uint8_t>(rng.uniform_index(3)),
            rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1}});
      }
      transfers.push_back(std::move(t));
    }
    const auto result = fsim.run_phase(transfers);
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const Duration floor = transfer_time(transfers[i].bytes, Bandwidth::gbps(100));
      EXPECT_GE(result.flows[i].completion.to_seconds(),
                floor.to_seconds() * (1.0 - 1e-9));
      EXPECT_GE(result.duration.to_seconds(), result.flows[i].completion.to_seconds() - 1e-12);
    }
  }
}

TEST(FlowSimProps, WorkConservationOnSingleLink) {
  // All flows share one link: total time == total bytes / capacity.
  Rng rng{0xc0};
  const Bandwidth cap = Bandwidth::gbps(100);
  const sim::FlowSimulator fsim{cap};
  for (int round = 0; round < 30; ++round) {
    std::vector<coll::Transfer> transfers;
    DataSize total = DataSize::zero();
    const std::size_t n = 1 + rng.uniform_index(8);
    for (std::size_t i = 0; i < n; ++i) {
      coll::Transfer t;
      t.src = 0;
      t.dst = 1;
      t.bytes = DataSize::kib(static_cast<double>(1 + rng.uniform_index(5000)));
      t.route = {topo::DirectedLink{0, 0, +1}};
      total += t.bytes;
      transfers.push_back(std::move(t));
    }
    const auto result = fsim.run_phase(transfers);
    EXPECT_NEAR(result.duration.to_seconds(), transfer_time(total, cap).to_seconds(),
                1e-9);
  }
}

// --- Analytic model vs flow sim across shapes (TEST_P sweep) ------------------

struct SweepCase {
  Shape shape;
  Coord offset;
  double mib;
};

class ModelVsSim : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelVsSim, ElectricalScheduleMatchesAnalyticBeta) {
  const auto& c = GetParam();
  TpuCluster cluster;
  const Slice slice{0, 0, c.offset, c.shape};
  const coll::CostParams params;
  const DataSize n = DataSize::mib(c.mib);
  const auto plan = coll::build_plan(slice, cluster.config().rack_shape);
  if (plan.stages.empty()) GTEST_SKIP();
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster, slice, n, coll::Interconnect::kElectrical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto run = fsim.run(schedule);
  const auto cost =
      coll::reduce_scatter_cost(plan, n, coll::Interconnect::kElectrical, params);
  EXPECT_NEAR(run.total.to_seconds(), cost.beta_time.to_seconds(),
              cost.beta_time.to_seconds() * 1e-6)
      << "shape " << c.shape[0] << "x" << c.shape[1] << "x" << c.shape[2];
  EXPECT_LE(run.peak_link_load, 1u) << "plan schedules must be congestion-free";
}

TEST_P(ModelVsSim, OpticalScheduleMatchesAnalyticTotal) {
  const auto& c = GetParam();
  TpuCluster cluster;
  const Slice slice{0, 0, c.offset, c.shape};
  const coll::CostParams params;
  const DataSize n = DataSize::mib(c.mib);
  const auto plan = coll::build_plan(slice, cluster.config().rack_shape);
  if (plan.stages.empty()) GTEST_SKIP();
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster, slice, n, coll::Interconnect::kOptical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto run = fsim.run(schedule);
  const auto cost =
      coll::reduce_scatter_cost(plan, n, coll::Interconnect::kOptical, params);
  const double expected =
      cost.beta_time.to_seconds() + cost.reconfig_time(params).to_seconds();
  EXPECT_NEAR(run.total.to_seconds(), expected, expected * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModelVsSim,
    ::testing::Values(SweepCase{Shape{{4, 2, 1}}, Coord{{0, 0, 0}}, 16.0},
                      SweepCase{Shape{{4, 2, 1}}, Coord{{0, 2, 3}}, 128.0},
                      SweepCase{Shape{{4, 4, 1}}, Coord{{0, 0, 0}}, 64.0},
                      SweepCase{Shape{{4, 4, 2}}, Coord{{0, 0, 2}}, 64.0},
                      SweepCase{Shape{{2, 2, 1}}, Coord{{1, 1, 1}}, 8.0},
                      SweepCase{Shape{{2, 2, 2}}, Coord{{2, 2, 2}}, 32.0},
                      SweepCase{Shape{{4, 1, 1}}, Coord{{0, 3, 0}}, 4.0},
                      SweepCase{Shape{{4, 4, 4}}, Coord{{0, 0, 0}}, 256.0}));

// --- Planner fuzz: placement never corrupts the ledger ------------------------

TEST(PlannerFuzz, RepeatedPlacementCyclesAreClean) {
  Rng rng{0x91a};
  fabric::FabricConfig config;
  config.wafer.lanes_per_edge = 32;  // scarce: failures will happen
  Fabric fab{config};
  routing::CircuitPlanner planner{fab};
  for (int round = 0; round < 30; ++round) {
    std::vector<routing::Demand> demands;
    const std::size_t n = 1 + rng.uniform_index(40);
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
      auto dst = static_cast<fabric::TileId>(rng.uniform_index(32));
      if (dst == src) dst = (dst + 1) % 32;
      demands.push_back(routing::Demand{
          GlobalTile{0, src}, GlobalTile{0, dst},
          1 + static_cast<std::uint32_t>(rng.uniform_index(8))});
    }
    const auto report = planner.place_all(demands);
    EXPECT_EQ(report.placed.size() + report.failed.size(), demands.size());
    planner.release_all(report);
    ASSERT_EQ(fab.wafer(0).total_lanes_used(), 0u) << "round " << round;
    ASSERT_EQ(fab.active_circuits(), 0u);
  }
}

}  // namespace
}  // namespace lp
