#include <gtest/gtest.h>

#include <vector>

#include "collective/alltoall.hpp"
#include "collective/schedule.hpp"
#include "sim/event_queue.hpp"
#include "sim/flow_sim.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::sim {
namespace {

using coll::Interconnect;
using coll::Transfer;
using topo::Coord;
using topo::DirectedLink;
using topo::Shape;
using topo::Slice;
using topo::TpuCluster;

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(2.0), [&] { order.push_back(2); });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint::at_seconds(3.0), [&] { order.push_back(3); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtEqualTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksCanSchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] {
    ++fired;
    q.schedule_in(Duration::seconds(1.0), [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(TimePoint::at_seconds(1.0), [&] { ++fired; });
  q.schedule_at(TimePoint::at_seconds(5.0), [&] { ++fired; });
  EXPECT_EQ(q.run_until(TimePoint::at_seconds(2.0)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

Transfer electrical(topo::TpuId src, topo::TpuId dst, DataSize bytes,
                    std::vector<DirectedLink> route) {
  Transfer t;
  t.src = src;
  t.dst = dst;
  t.bytes = bytes;
  t.route = std::move(route);
  return t;
}

TEST(FlowSim, SingleFlowFullRate) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const auto r = sim.run_phase(
      {electrical(0, 1, DataSize::gib(1), {DirectedLink{0, 0, +1}})});
  EXPECT_NEAR(r.duration.to_seconds(),
              transfer_time(DataSize::gib(1), Bandwidth::gbps(100)).to_seconds(), 1e-9);
  EXPECT_EQ(r.peak_link_load, 1u);
}

TEST(FlowSim, TwoFlowsShareLinkHalfRate) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const DirectedLink shared{0, 0, +1};
  const auto r = sim.run_phase({
      electrical(0, 1, DataSize::gib(1), {shared}),
      electrical(0, 1, DataSize::gib(1), {shared}),
  });
  EXPECT_NEAR(r.duration.to_seconds(),
              2 * transfer_time(DataSize::gib(1), Bandwidth::gbps(100)).to_seconds(),
              1e-9);
  EXPECT_EQ(r.peak_link_load, 2u);
  EXPECT_NEAR(r.flows[0].initial_rate.to_gbps(), 50.0, 1e-6);
}

TEST(FlowSim, ShortFlowFreesBandwidthForLongFlow) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const DirectedLink shared{0, 0, +1};
  // Short flow (0.5 GiB) and long flow (1.5 GiB) share a link: short ends at
  // t=2*0.5/(100G) ... then long runs at full rate.
  const auto r = sim.run_phase({
      electrical(0, 1, DataSize::gib(0.5), {shared}),
      electrical(0, 1, DataSize::gib(1.5), {shared}),
  });
  const double g = DataSize::gib(1).to_bits();
  const double t_short = 0.5 * g / 50e9;
  const double t_long = t_short + (1.5 * g - 50e9 * t_short) / 100e9;
  EXPECT_NEAR(r.flows[0].completion.to_seconds(), t_short, 1e-9);
  EXPECT_NEAR(r.flows[1].completion.to_seconds(), t_long, 1e-9);
}

TEST(FlowSim, DisjointFlowsDoNotInteract) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const auto r = sim.run_phase({
      electrical(0, 1, DataSize::gib(1), {DirectedLink{0, 0, +1}}),
      electrical(2, 3, DataSize::gib(1), {DirectedLink{2, 0, +1}}),
  });
  EXPECT_NEAR(r.duration.to_seconds(),
              transfer_time(DataSize::gib(1), Bandwidth::gbps(100)).to_seconds(), 1e-9);
}

TEST(FlowSim, OpticalFlowsIgnoreLinkContention) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  Transfer optical;
  optical.src = 0;
  optical.dst = 1;
  optical.bytes = DataSize::gib(1);
  optical.dedicated_rate = Bandwidth::gbps(800);
  const auto r = sim.run_phase({optical});
  EXPECT_NEAR(r.duration.to_seconds(),
              transfer_time(DataSize::gib(1), Bandwidth::gbps(800)).to_seconds(), 1e-9);
}

TEST(FlowSim, MultiHopFlowBottleneckedOnce) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  // A 2-hop flow and a 1-hop flow sharing only the second link.
  const DirectedLink l1{0, 0, +1};
  const DirectedLink l2{1, 0, +1};
  const auto r = sim.run_phase({
      electrical(0, 2, DataSize::gib(1), {l1, l2}),
      electrical(1, 2, DataSize::gib(1), {l2}),
  });
  // Both flows bottleneck on l2 at 50G each.
  EXPECT_NEAR(r.flows[0].initial_rate.to_gbps(), 50.0, 1e-6);
  EXPECT_NEAR(r.flows[1].initial_rate.to_gbps(), 50.0, 1e-6);
}

TEST(FlowSim, MaxMinGivesUnbottleneckedFlowTheRest) {
  const FlowSimulator sim{Bandwidth::gbps(90)};
  // Three flows on link A; one of them also crosses link B with one other.
  const DirectedLink a{0, 0, +1};
  const DirectedLink b{1, 0, +1};
  const auto r = sim.run_phase({
      electrical(0, 1, DataSize::gib(10), {a}),
      electrical(0, 1, DataSize::gib(10), {a}),
      electrical(0, 2, DataSize::gib(10), {a, b}),
      electrical(1, 2, DataSize::gib(10), {b}),
  });
  // Link A: 3 flows -> 30G each is the first bottleneck.
  EXPECT_NEAR(r.flows[0].initial_rate.to_gbps(), 30.0, 1e-6);
  EXPECT_NEAR(r.flows[2].initial_rate.to_gbps(), 30.0, 1e-6);
  // Link B: flow 3 gets the residual 60G.
  EXPECT_NEAR(r.flows[3].initial_rate.to_gbps(), 60.0, 1e-6);
}

TEST(FlowSim, EmptyPhase) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const auto r = sim.run_phase({});
  EXPECT_EQ(r.duration, Duration::zero());
}

// Zero- and sub-epsilon-byte transfers complete instantly and still report
// the rate they would have started at — no flow is left with a zero
// initial_rate just because it never reached the filling loop.
TEST(FlowSim, ZeroByteTransfersRecordInitialRate) {
  const FlowSimulator sim{Bandwidth::gbps(100)};
  const DirectedLink link{0, 0, +1};
  Transfer optical_zero;
  optical_zero.src = 2;
  optical_zero.dst = 3;
  optical_zero.dedicated_rate = Bandwidth::gbps(300);
  const auto r = sim.run_phase({
      electrical(0, 1, DataSize::zero(), {link}),
      // 1e-8 bytes = 8e-8 bits, below the solver's done-epsilon.
      electrical(1, 2, DataSize::bytes(1e-8), {DirectedLink{1, 0, +1}}),
      optical_zero,
      electrical(0, 1, DataSize::gib(1), {link}),
  });
  ASSERT_EQ(r.flows.size(), 4u);
  EXPECT_EQ(r.flows[0].completion, Duration::zero());
  EXPECT_EQ(r.flows[1].completion, Duration::zero());
  EXPECT_EQ(r.flows[2].completion, Duration::zero());
  EXPECT_NEAR(r.flows[0].initial_rate.to_gbps(), 100.0, 1e-9);
  EXPECT_NEAR(r.flows[1].initial_rate.to_gbps(), 100.0, 1e-9);
  EXPECT_NEAR(r.flows[2].initial_rate.to_gbps(), 300.0, 1e-9);
  // The real flow is unaffected by its instantly-done link mate: full rate.
  EXPECT_NEAR(r.flows[3].initial_rate.to_gbps(), 100.0, 1e-9);
  EXPECT_NEAR(r.duration.to_seconds(),
              transfer_time(DataSize::gib(1), Bandwidth::gbps(100)).to_seconds(), 1e-9);
}

// --- Schedule-level: flow sim must reproduce the analytic cost model --------

class ScheduleSim : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  coll::CostParams params_;
  DataSize n_ = DataSize::mib(64);
};

TEST_F(ScheduleSim, ElectricalSlice1MatchesAnalyticBeta) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster_, s, n_, Interconnect::kElectrical, params_);
  const FlowSimulator sim{cluster_.dim_bandwidth()};
  const auto result = sim.run(schedule);
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  const auto cost =
      coll::reduce_scatter_cost(plan, n_, Interconnect::kElectrical, params_);
  EXPECT_NEAR(result.total.to_seconds(), cost.beta_time.to_seconds(), 1e-9);
  EXPECT_EQ(result.peak_link_load, 1u) << "snake ring must be congestion-free";
}

TEST_F(ScheduleSim, OpticalSlice1MatchesAnalyticBetaPlusReconfig) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster_, s, n_, Interconnect::kOptical, params_);
  const FlowSimulator sim{cluster_.dim_bandwidth()};
  const auto result = sim.run(schedule);
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  const auto cost = coll::reduce_scatter_cost(plan, n_, Interconnect::kOptical, params_);
  EXPECT_NEAR(result.total.to_seconds(),
              (cost.beta_time + cost.reconfig_time(params_)).to_seconds(), 1e-9);
  EXPECT_NEAR(result.reconfig_time.to_micros(), 3.7, 1e-6);
}

TEST_F(ScheduleSim, ElectricalSlice3TwoStageMatches) {
  const Slice s{0, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster_, s, n_, Interconnect::kElectrical, params_);
  EXPECT_EQ(schedule.phases.size(), 6u);  // 3 steps x 2 stages
  const FlowSimulator sim{cluster_.dim_bandwidth()};
  const auto result = sim.run(schedule);
  const auto plan = coll::build_plan(s, cluster_.config().rack_shape);
  const auto cost =
      coll::reduce_scatter_cost(plan, n_, Interconnect::kElectrical, params_);
  EXPECT_NEAR(result.total.to_seconds(), cost.beta_time.to_seconds(), 1e-9);
}

TEST_F(ScheduleSim, OpticalBeatsElectricalOnSlice1) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const FlowSimulator sim{cluster_.dim_bandwidth()};
  const DataSize big = DataSize::gib(4);  // r is negligible at this size
  const auto elec = sim.run(coll::build_reduce_scatter_schedule(
      cluster_, s, big, Interconnect::kElectrical, params_));
  const auto opt = sim.run(coll::build_reduce_scatter_schedule(
      cluster_, s, big, Interconnect::kOptical, params_));
  EXPECT_NEAR(elec.total.to_seconds() / opt.total.to_seconds(), 3.0, 0.01)
      << "measured speedup should be ~3x for Slice-1 at large N";
}

TEST_F(ScheduleSim, ScheduleAccounting) {
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster_, s, n_, Interconnect::kElectrical, params_);
  EXPECT_EQ(schedule.phases.size(), 7u);
  EXPECT_EQ(schedule.transfer_count(), 7u * 8u);
  // ReduceScatter moves (p-1)/p * N per chip: 8 chips x 7/8 N = 7N.
  EXPECT_NEAR(schedule.total_bytes().to_bytes(), 7.0 * n_.to_bytes(), 1.0);
}

// --- All-to-all --------------------------------------------------------------

TEST(AllToAll, UniformDemandMatrix) {
  const auto m = coll::uniform_all_to_all(4, DataSize::mib(3));
  EXPECT_EQ(m.size, 4u);
  EXPECT_NEAR(m.at(0, 1).to_mib(), 1.0, 1e-12);
  EXPECT_NEAR(m.at(2, 3).to_mib(), 1.0, 1e-12);
}

TEST(AllToAll, MoeDemandConservesTokens) {
  Rng rng{99};
  const auto m = coll::moe_gating_demand(8, 100, 2, DataSize::kib(4), rng);
  DataSize total = DataSize::zero();
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t d = 0; d < 8; ++d) total += m.at(s, d);
  }
  // 8 chips x 100 tokens x 2 experts, minus self-routed tokens.
  EXPECT_LE(total.to_bytes(), 8 * 100 * 2 * DataSize::kib(4).to_bytes());
  EXPECT_GT(total.to_bytes(), 0.8 * 8 * 100 * 2 * DataSize::kib(4).to_bytes());
}

TEST(AllToAll, DimensionOrderRouteLengths) {
  TpuCluster cluster;
  const auto a = cluster.chip_at(0, Coord{{0, 0, 0}});
  const auto b = cluster.chip_at(0, Coord{{3, 2, 1}});
  const auto route = coll::dimension_order_route(cluster, a, b);
  // Shortest-way: x: 0->3 wraps -1 (1 hop), y: 2 hops, z: 1 hop.
  EXPECT_EQ(route.size(), 4u);
}

TEST(AllToAll, OpticalFasterThanElectricalForUniform) {
  TpuCluster cluster;
  const Slice s{0, 0, Coord{{0, 0, 0}}, Shape{{4, 4, 1}}};
  coll::CostParams params;
  const auto demand = coll::uniform_all_to_all(16, DataSize::mib(64));
  const auto elec_sched = coll::build_all_to_all_schedule(
      cluster, s, demand, Interconnect::kElectrical, params);
  const auto opt_sched = coll::build_all_to_all_schedule(
      cluster, s, demand, Interconnect::kOptical, params);
  const FlowSimulator sim{cluster.dim_bandwidth()};
  const auto elec = sim.run(elec_sched);
  const auto opt = sim.run(opt_sched);
  EXPECT_LT(opt.total.to_seconds(), elec.total.to_seconds());
  EXPECT_GT(elec.peak_link_load, 1u) << "electrical all-to-all must contend";
}

}  // namespace
}  // namespace lp::sim
