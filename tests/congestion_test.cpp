// Congestion analysis tests reproducing the mechanics of Figures 5b and 6.
#include <gtest/gtest.h>

#include "collective/congestion.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::coll {
namespace {

using topo::ChipState;
using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::SliceAllocator;
using topo::TpuCluster;
using topo::TpuId;

TEST(LinkLoad, CountsAndQueries) {
  LinkLoad load{60};
  const topo::DirectedLink l{3, 1, +1};
  EXPECT_EQ(load.load(l), 0u);
  load.add(l);
  load.add(l);
  EXPECT_EQ(load.load(l), 2u);
  EXPECT_EQ(load.max_load(), 2u);
  EXPECT_FALSE(load.congestion_free());
  EXPECT_EQ(load.congested_link_count(), 1u);
  EXPECT_EQ(load.busy_link_count(), 1u);
}

class Figure5 : public ::testing::Test {
 protected:
  void SetUp() override {
    auto packing = topo::pack_figure5(alloc_);
    ASSERT_TRUE(packing.ok());
    packing_ = packing.value();
  }

  TpuCluster cluster_;
  SliceAllocator alloc_{cluster_};
  topo::Figure5Packing packing_{};
};

TEST_F(Figure5, UsableOnlyPolicyIsCongestionFree) {
  const auto analysis = analyze_rack(cluster_, alloc_, 0, RingSelection::kUsableOnly);
  EXPECT_TRUE(analysis.congestion_free);
  EXPECT_EQ(analysis.load.max_load(), 1u);
  EXPECT_EQ(analysis.foreign_transits, 0u);
  EXPECT_EQ(analysis.per_slice.size(), 4u);
}

TEST_F(Figure5, AllActivePolicyCongests) {
  // Naive tenants ringing every active dim: Slice-4's Z rings wrap through
  // Slice-3 and Slice-1/2's z-layers -> congestion (Figure 5b's shared-Z).
  const auto analysis = analyze_rack(cluster_, alloc_, 0, RingSelection::kAllActive);
  EXPECT_FALSE(analysis.congestion_free);
  EXPECT_GT(analysis.foreign_transits, 0u);
}

TEST_F(Figure5, Slice1YRingLeavesSlice) {
  const Slice* s1 = alloc_.slice(packing_.slice1);
  ASSERT_NE(s1, nullptr);
  const auto traffic = slice_traffic(cluster_, *s1, RingSelection::kAllActive);
  std::size_t foreign = 0;
  for (TpuId t : traffic.transit_chips) {
    if (alloc_.owner(t).has_value()) ++foreign;
  }
  EXPECT_GT(foreign, 0u) << "Y wrap of Slice-1 must cross Slice-2 chips";
}

TEST_F(Figure5, UsableOnlyTrafficStaysInsideEachSlice) {
  for (topo::SliceId id :
       {packing_.slice1, packing_.slice2, packing_.slice3, packing_.slice4}) {
    const Slice* s = alloc_.slice(id);
    ASSERT_NE(s, nullptr);
    const auto traffic = slice_traffic(cluster_, *s, RingSelection::kUsableOnly);
    EXPECT_TRUE(traffic.transit_chips.empty()) << "slice " << id;
    for (const auto& link : traffic.links) {
      EXPECT_TRUE(s->contains(cluster_.coord_of(link.chip))) << "slice " << id;
    }
  }
}

TEST(Congestion, TwoSlicesSharingPartialDimCollide) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  // Two 4x2x1 slices side by side in Y at z=0.
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 2, 1}}).ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 2, 0}}, Shape{{4, 2, 1}}).ok());
  const auto analysis = analyze_rack(cluster, alloc, 0, RingSelection::kAllActive);
  // Each slice's Y wrap traverses the other slice's Y links.
  EXPECT_FALSE(analysis.congestion_free);
  EXPECT_GT(analysis.load.congested_link_count(), 0u);
}

class PathSearch : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  SliceAllocator alloc_{cluster_};
  LinkLoad no_busy_{cluster_.directed_link_count()};
};

TEST_F(PathSearch, DirectNeighborReachable) {
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId b = cluster_.chip_at(0, Coord{{1, 0, 0}});
  const auto path = find_uncongested_path(cluster_, alloc_, no_busy_, a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST_F(PathSearch, RoutesAroundAllocatedWall) {
  // Wall off x=1 plane except it can wrap x=3->x=0.
  ASSERT_TRUE(alloc_.allocate_at(0, Coord{{1, 0, 0}}, Shape{{1, 4, 4}}).ok());
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId b = cluster_.chip_at(0, Coord{{2, 0, 0}});
  const auto path = find_uncongested_path(cluster_, alloc_, no_busy_, a, b);
  ASSERT_TRUE(path.has_value());
  // Must go the wraparound way: 0 -> 3 -> 2.
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[1], cluster_.chip_at(0, Coord{{3, 0, 0}}));
}

TEST_F(PathSearch, FullyWalledIsImpossible) {
  // Both x=1 and x=3 planes allocated: x=0 cannot reach x=2 without transit
  // through allocated chips (the Figure 6a outcome).
  ASSERT_TRUE(alloc_.allocate_at(0, Coord{{1, 0, 0}}, Shape{{1, 4, 4}}).ok());
  ASSERT_TRUE(alloc_.allocate_at(0, Coord{{3, 0, 0}}, Shape{{1, 4, 4}}).ok());
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId b = cluster_.chip_at(0, Coord{{2, 0, 0}});
  EXPECT_FALSE(find_uncongested_path(cluster_, alloc_, no_busy_, a, b).has_value());
}

TEST_F(PathSearch, BusyLinksAvoided) {
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId b = cluster_.chip_at(0, Coord{{1, 0, 0}});
  LinkLoad busy{cluster_.directed_link_count()};
  busy.add(topo::DirectedLink{a, 0, +1});  // the direct hop is taken
  const auto path = find_uncongested_path(cluster_, alloc_, busy, a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->size(), 2u) << "must detour around the busy link";
}

TEST_F(PathSearch, FailedChipsExcluded) {
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId mid = cluster_.chip_at(0, Coord{{1, 0, 0}});
  const TpuId b = cluster_.chip_at(0, Coord{{2, 0, 0}});
  cluster_.set_state(mid, ChipState::kFailed);
  const auto path = find_uncongested_path(cluster_, alloc_, no_busy_, a, b);
  ASSERT_TRUE(path.has_value());
  for (TpuId t : *path) EXPECT_NE(t, mid);
}

// Regression: the repair-path BFS must stay inside the rack of `from`.  A
// spare in another rack is unreachable by construction, and every hop of a
// successful path lies in the source's rack even when the search detours.
TEST_F(PathSearch, CrossRackTargetUnreachable) {
  const TpuId a = cluster_.chip_at(0, Coord{{0, 0, 0}});
  const TpuId other = cluster_.chip_at(1, Coord{{0, 0, 0}});
  EXPECT_FALSE(find_uncongested_path(cluster_, alloc_, no_busy_, a, other).has_value());
}

TEST_F(PathSearch, PathNeverLeavesSourceRack) {
  const topo::RackId rack = 3;
  const TpuId from = cluster_.chip_at(rack, Coord{{0, 0, 0}});
  const TpuId to = cluster_.chip_at(rack, Coord{{2, 3, 1}});
  // Wall off the straight X corridor so the search has to detour.
  cluster_.set_state(cluster_.chip_at(rack, Coord{{1, 0, 0}}), ChipState::kFailed);
  const auto path = find_uncongested_path(cluster_, alloc_, no_busy_, from, to);
  ASSERT_TRUE(path.has_value());
  for (TpuId hop : *path) EXPECT_EQ(cluster_.rack_of(hop), rack);
}

TEST_F(PathSearch, LinksOnChipPathHandlesWraparound) {
  const std::vector<TpuId> path{cluster_.chip_at(0, Coord{{3, 0, 0}}),
                                cluster_.chip_at(0, Coord{{0, 0, 0}})};
  const auto links = links_on_chip_path(cluster_, path);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].dim, 0);
  EXPECT_EQ(links[0].sign, +1);
}

}  // namespace
}  // namespace lp::coll
