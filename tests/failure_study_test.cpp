// Tests of the Monte-Carlo availability study.
#include <gtest/gtest.h>

#include "core/failure_study.hpp"

namespace lp::core {
namespace {

FailureStudyParams quick_params() {
  FailureStudyParams p;
  p.mtbf_hours = 5000.0;  // high failure rate for test speed
  p.horizon_hours = 24.0 * 7.0;
  p.fleet_chips = 1024;
  return p;
}

TEST(FailureStudy, DeterministicUnderSeed) {
  const auto a = run_failure_study(FailurePolicy::kRackMigration, quick_params());
  const auto b = run_failure_study(FailurePolicy::kRackMigration, quick_params());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.chip_hours_lost, b.chip_hours_lost);
}

TEST(FailureStudy, FailureCountNearExpectation) {
  const auto params = quick_params();
  const auto report = run_failure_study(FailurePolicy::kRackMigration, params);
  const double expected =
      params.fleet_chips / params.mtbf_hours * params.horizon_hours;  // ~34
  EXPECT_GT(report.failures, expected * 0.5);
  EXPECT_LT(report.failures, expected * 1.5);
}

TEST(FailureStudy, OpticalRepairBeatsMigrationOnAvailability) {
  const auto migration =
      run_failure_study(FailurePolicy::kRackMigration, quick_params());
  const auto optical = run_failure_study(FailurePolicy::kOpticalRepair, quick_params());
  EXPECT_GT(optical.availability, migration.availability);
  EXPECT_LT(optical.chip_hours_lost, migration.chip_hours_lost / 1000.0)
      << "microsecond repairs vs minute migrations";
}

TEST(FailureStudy, ElectricalRepairMostlyFallsBack) {
  const auto report =
      run_failure_study(FailurePolicy::kElectricalRepair, quick_params());
  EXPECT_GT(report.unrecovered, report.failures / 2)
      << "Figure 6: in-place electrical repair is usually infeasible";
}

TEST(FailureStudy, AvailabilityBounded) {
  for (const auto policy : {FailurePolicy::kRackMigration,
                            FailurePolicy::kElectricalRepair,
                            FailurePolicy::kOpticalRepair}) {
    const auto report = run_failure_study(policy, quick_params());
    EXPECT_GE(report.availability, 0.0);
    EXPECT_LE(report.availability, 1.0);
  }
}

}  // namespace
}  // namespace lp::core
