// Tests of the Monte-Carlo availability study.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/failure_study.hpp"
#include "core/photonic_rack.hpp"

namespace lp::core {
namespace {

FailureStudyParams quick_params() {
  FailureStudyParams p;
  p.mtbf_hours = 5000.0;  // high failure rate for test speed
  p.horizon_hours = 24.0 * 7.0;
  p.fleet_chips = 1024;
  return p;
}

TEST(FailureStudy, DeterministicUnderSeed) {
  const auto a = run_failure_study(FailurePolicy::kRackMigration, quick_params());
  const auto b = run_failure_study(FailurePolicy::kRackMigration, quick_params());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.chip_hours_lost, b.chip_hours_lost);
}

TEST(FailureStudy, FailureCountNearExpectation) {
  const auto params = quick_params();
  const auto report = run_failure_study(FailurePolicy::kRackMigration, params);
  const double expected =
      params.fleet_chips / params.mtbf_hours * params.horizon_hours;  // ~34
  EXPECT_GT(report.failures, expected * 0.5);
  EXPECT_LT(report.failures, expected * 1.5);
}

TEST(FailureStudy, OpticalRepairBeatsMigrationOnAvailability) {
  const auto migration =
      run_failure_study(FailurePolicy::kRackMigration, quick_params());
  const auto optical = run_failure_study(FailurePolicy::kOpticalRepair, quick_params());
  EXPECT_GT(optical.availability, migration.availability);
  EXPECT_LT(optical.chip_hours_lost, migration.chip_hours_lost / 1000.0)
      << "microsecond repairs vs minute migrations";
}

TEST(FailureStudy, ElectricalRepairMostlyFallsBack) {
  const auto report =
      run_failure_study(FailurePolicy::kElectricalRepair, quick_params());
  EXPECT_GT(report.unrecovered, report.failures / 2)
      << "Figure 6: in-place electrical repair is usually infeasible";
}

TEST(FailureStudy, AvailabilityBounded) {
  for (const auto policy : {FailurePolicy::kRackMigration,
                            FailurePolicy::kElectricalRepair,
                            FailurePolicy::kOpticalRepair}) {
    const auto report = run_failure_study(policy, quick_params());
    EXPECT_GE(report.availability, 0.0);
    EXPECT_LE(report.availability, 1.0);
  }
}

// The parallel sweep's determinism contract: the report is bit-identical at
// every thread count (victims come from task_seed(seed, trial), the fold
// runs in trial order).
TEST(FailureStudy, ReportIdenticalAtAnyThreadCount) {
  for (const auto policy : {FailurePolicy::kRackMigration,
                            FailurePolicy::kElectricalRepair,
                            FailurePolicy::kOpticalRepair}) {
    auto serial = quick_params();
    serial.threads = 1;
    auto wide = quick_params();
    wide.threads = std::max(4u, std::thread::hardware_concurrency());
    const auto a = run_failure_study(policy, serial);
    const auto b = run_failure_study(policy, wide);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.unrecovered, b.unrecovered);
    EXPECT_EQ(a.chip_hours_lost, b.chip_hours_lost) << "must be bit-identical";
    EXPECT_EQ(a.availability, b.availability);
  }
}

// The batch path (template workspace reset between trials) must agree with
// a from-scratch world per victim.
TEST(FailureStudy, BatchMatchesFreshSerialAssessment) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  pack_template_rack(alloc);
  std::vector<topo::TpuId> victims;
  for (topo::TpuId chip = 0; chip < cluster.chips_per_rack(); chip += 5) {
    if (alloc.owner(chip)) victims.push_back(chip);
  }
  ASSERT_FALSE(victims.empty());

  const auto batch =
      assess_failures_batch(FailurePolicy::kElectricalRepair, victims, {}, 4);
  ASSERT_EQ(batch.size(), victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    topo::TpuCluster fresh;
    topo::SliceAllocator fresh_alloc{fresh};
    pack_template_rack(fresh_alloc);
    const auto want = assess_failure(fresh, fresh_alloc, victims[i],
                                     FailurePolicy::kElectricalRepair, {});
    EXPECT_EQ(batch[i].blast_radius_chips, want.blast_radius_chips) << victims[i];
    EXPECT_EQ(batch[i].jobs_interrupted, want.jobs_interrupted) << victims[i];
    EXPECT_EQ(batch[i].recovery_time, want.recovery_time) << victims[i];
    EXPECT_EQ(batch[i].feasible, want.feasible) << victims[i];
    EXPECT_EQ(batch[i].congestion_free, want.congestion_free) << victims[i];
  }
}

// Repeated victims share one assessment; the optical policy exercises the
// fabric teardown between trials (stale circuits would change the result).
TEST(FailureStudy, BatchDuplicateVictimsConsistent) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  pack_template_rack(alloc);
  topo::TpuId v = 0;
  while (!alloc.owner(v)) ++v;
  const std::vector<topo::TpuId> victims{v, v, v, v};
  const auto batch = assess_failures_batch(FailurePolicy::kOpticalRepair, victims, {}, 2);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].blast_radius_chips, batch[0].blast_radius_chips);
    EXPECT_EQ(batch[i].recovery_time, batch[0].recovery_time);
    EXPECT_EQ(batch[i].feasible, batch[0].feasible);
    EXPECT_EQ(batch[i].congestion_free, batch[0].congestion_free);
  }
}

// The unrecovered counter splits exactly into its two causes, and a policy
// that always succeeds reports neither.
TEST(FailureStudy, UnrecoveredSplitsIntoSpareExhaustedAndPlanFailure) {
  for (const auto policy : {FailurePolicy::kRackMigration,
                            FailurePolicy::kElectricalRepair,
                            FailurePolicy::kOpticalRepair}) {
    const auto report = run_failure_study(policy, quick_params());
    EXPECT_EQ(report.unrecovered,
              report.unrecovered_spare_exhausted + report.unrecovered_plan_failure)
        << "policy " << static_cast<int>(policy);
  }
  const auto migration = run_failure_study(FailurePolicy::kRackMigration, quick_params());
  EXPECT_EQ(migration.unrecovered_spare_exhausted, 0u);
  EXPECT_EQ(migration.unrecovered_plan_failure, 0u);
}

// Figure 6's electrical infeasibility is a routing problem, not a spare
// shortage: the template rack keeps free chips, so every unrecovered trial
// is a plan failure.
TEST(FailureStudy, ElectricalUnrecoveredIsPlanFailureWithSparesFree) {
  const auto report =
      run_failure_study(FailurePolicy::kElectricalRepair, quick_params());
  ASSERT_GT(report.unrecovered, 0u);
  EXPECT_EQ(report.unrecovered_spare_exhausted, 0u);
  EXPECT_EQ(report.unrecovered_plan_failure, report.unrecovered);
}

// With the rack packed wall-to-wall there is no spare to rewire in, and the
// optical assessment must say so (kSpareExhausted, not a generic plan
// failure).
TEST(FailureStudy, OpticalAssessmentReportsSpareExhaustion) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  pack_template_rack(alloc);
  // Claim the 4x2x1 corner pack_template_rack leaves free.
  const auto fill = alloc.allocate_at(0, topo::Coord{{0, 2, 3}}, topo::Shape{{4, 2, 1}});
  ASSERT_TRUE(fill.ok());
  ASSERT_TRUE(cluster.free_chips_in_rack(0).empty());

  PhotonicRack rack{cluster, 0};
  topo::TpuId victim = 0;
  while (!alloc.owner(victim)) ++victim;
  const auto impact = assess_failure(cluster, alloc, victim,
                                     FailurePolicy::kOpticalRepair, {}, &rack);
  EXPECT_FALSE(impact.feasible);
  EXPECT_EQ(impact.cause, UnrecoveredCause::kSpareExhausted);
}

}  // namespace
}  // namespace lp::core
