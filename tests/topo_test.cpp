#include <gtest/gtest.h>

#include <set>

#include "topo/cluster.hpp"
#include "topo/slice.hpp"
#include "topo/torus.hpp"

namespace lp::topo {
namespace {

TEST(Torus, IndexCoordRoundTrip) {
  const Torus t{Shape{{4, 4, 4}}};
  EXPECT_EQ(t.size(), 64);
  for (std::int32_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.index(t.coord(i)), i);
  }
}

TEST(Torus, NeighborWraparound) {
  const Torus t{Shape{{4, 4, 4}}};
  const Coord edge{{3, 0, 0}};
  EXPECT_EQ(t.neighbor(edge, 0, +1), (Coord{{0, 0, 0}}));
  EXPECT_EQ(t.neighbor(Coord{{0, 0, 0}}, 0, -1), (Coord{{3, 0, 0}}));
  EXPECT_EQ(t.neighbor(Coord{{1, 2, 3}}, 2, +1), (Coord{{1, 2, 0}}));
}

TEST(Torus, RingThroughVisitsFullDimension) {
  const Torus t{Shape{{4, 2, 3}}};
  const auto ring = t.ring_through(Coord{{1, 1, 2}}, 0);
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring[0], (Coord{{1, 1, 2}}));
  EXPECT_EQ(ring[1], (Coord{{2, 1, 2}}));
  EXPECT_EQ(ring[3], (Coord{{0, 1, 2}}));
}

TEST(Torus, AllCoordsComplete) {
  const Torus t{Shape{{2, 3, 4}}};
  const auto coords = t.all_coords();
  EXPECT_EQ(coords.size(), 24u);
  std::set<std::int32_t> seen;
  for (const Coord& c : coords) seen.insert(t.index(c));
  EXPECT_EQ(seen.size(), 24u);
}

TEST(Cluster, DefaultsMatchTpuV4) {
  const TpuCluster cluster;
  EXPECT_EQ(cluster.rack_count(), 64);
  EXPECT_EQ(cluster.chips_per_rack(), 64);
  EXPECT_EQ(cluster.chip_count(), 4096);
  EXPECT_EQ(cluster.servers_per_rack(), 16);
}

TEST(Cluster, ChipIdRoundTrip) {
  const TpuCluster cluster;
  for (RackId r : {0, 17, 63}) {
    for (std::int32_t i = 0; i < 64; i += 7) {
      const Coord c = cluster.rack_torus().coord(i);
      const TpuId chip = cluster.chip_at(r, c);
      EXPECT_EQ(cluster.rack_of(chip), r);
      EXPECT_EQ(cluster.coord_of(chip), c);
    }
  }
}

TEST(Cluster, ServerGrouping2x2x1) {
  const TpuCluster cluster;
  // Chips (0,0,0), (1,0,0), (0,1,0), (1,1,0) share a server.
  const TpuId base = cluster.chip_at(0, Coord{{0, 0, 0}});
  const auto chips = cluster.server_chips(base);
  EXPECT_EQ(chips.size(), 4u);
  std::set<std::int32_t> servers;
  for (std::int32_t i = 0; i < cluster.chips_per_rack(); ++i) servers.insert(cluster.server_of(i));
  EXPECT_EQ(servers.size(), 16u);
  // A different z belongs to a different server (groups are 2x2x1).
  EXPECT_NE(cluster.server_of(cluster.chip_at(0, Coord{{0, 0, 0}})),
            cluster.server_of(cluster.chip_at(0, Coord{{0, 0, 1}})));
}

TEST(Cluster, StateTracking) {
  TpuCluster cluster;
  EXPECT_EQ(cluster.state(100), ChipState::kFree);
  cluster.set_state(100, ChipState::kFailed);
  EXPECT_EQ(cluster.state(100), ChipState::kFailed);
  EXPECT_EQ(cluster.chips_in_state(ChipState::kFailed).size(), 1u);
  EXPECT_EQ(cluster.free_chips_in_rack(1).size(), 63u);
  EXPECT_EQ(cluster.free_chips_in_rack(0).size(), 64u);
}

TEST(Cluster, DimBandwidthIsThirdOfChip) {
  const TpuCluster cluster;
  EXPECT_NEAR(cluster.dim_bandwidth().to_gBps(), 100.0, 1e-9);
}

TEST(Cluster, WraparoundDetection) {
  const TpuCluster cluster;
  const TpuId interior = cluster.chip_at(0, Coord{{1, 1, 1}});
  EXPECT_FALSE(cluster.is_wraparound(DirectedLink{interior, 0, +1}));
  const TpuId face = cluster.chip_at(0, Coord{{3, 1, 1}});
  EXPECT_TRUE(cluster.is_wraparound(DirectedLink{face, 0, +1}));
  EXPECT_FALSE(cluster.is_wraparound(DirectedLink{face, 0, -1}));
  const TpuId origin = cluster.chip_at(0, Coord{{0, 1, 1}});
  EXPECT_TRUE(cluster.is_wraparound(DirectedLink{origin, 0, -1}));
}

TEST(Cluster, LinkTargetWraps) {
  const TpuCluster cluster;
  const TpuId face = cluster.chip_at(2, Coord{{3, 1, 1}});
  EXPECT_EQ(cluster.link_target(DirectedLink{face, 0, +1}),
            cluster.chip_at(2, Coord{{0, 1, 1}}));
}

TEST(Cluster, LinkKeyDense) {
  std::set<std::size_t> keys;
  for (TpuId chip = 0; chip < 4; ++chip) {
    for (std::uint8_t d = 0; d < 3; ++d) {
      for (std::int8_t s : {std::int8_t{+1}, std::int8_t{-1}}) {
        keys.insert(link_key(DirectedLink{chip, d, s}));
      }
    }
  }
  EXPECT_EQ(keys.size(), 24u);
  EXPECT_EQ(*keys.rbegin(), 23u);
}

TEST(Slice, ContainsAndCoords) {
  const Slice s{0, 0, Coord{{0, 2, 3}}, Shape{{4, 2, 1}}};
  EXPECT_EQ(s.chip_count(), 8);
  EXPECT_TRUE(s.contains(Coord{{0, 2, 3}}));
  EXPECT_TRUE(s.contains(Coord{{3, 3, 3}}));
  EXPECT_FALSE(s.contains(Coord{{0, 1, 3}}));
  EXPECT_FALSE(s.contains(Coord{{0, 2, 2}}));
  EXPECT_EQ(s.coords().size(), 8u);
}

TEST(Slice, SpansDimension) {
  const Shape rack{{4, 4, 4}};
  const Slice s{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  EXPECT_TRUE(s.spans_dimension(0, rack));
  EXPECT_FALSE(s.spans_dimension(1, rack));
  EXPECT_FALSE(s.spans_dimension(2, rack));
}

TEST(Allocator, AllocateAtMarksChips) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto id = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 1}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cluster.chips_in_state(ChipState::kAllocated).size(), 16u);
  EXPECT_EQ(alloc.owner(cluster.chip_at(0, Coord{{1, 1, 0}})), id.value());
  EXPECT_FALSE(alloc.owner(cluster.chip_at(0, Coord{{0, 0, 1}})).has_value());
}

TEST(Allocator, RejectsOverlapAndOutOfBounds) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}).ok());
  EXPECT_FALSE(alloc.allocate_at(0, Coord{{0, 0, 1}}, Shape{{4, 4, 1}}).ok());
  EXPECT_FALSE(alloc.allocate_at(0, Coord{{2, 0, 0}}, Shape{{4, 1, 1}}).ok());
}

TEST(Allocator, ReleaseFreesChips) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto id = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 2, 2}});
  ASSERT_TRUE(id.ok());
  alloc.release(id.value());
  EXPECT_EQ(cluster.chips_in_state(ChipState::kAllocated).size(), 0u);
  EXPECT_EQ(alloc.slice(id.value()), nullptr);
  alloc.release(id.value());  // idempotent
  // Region can be re-allocated.
  EXPECT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 2, 2}}).ok());
}

TEST(Allocator, ReleaseKeepsFailedChipsFailed) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto id = alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 2, 1}});
  ASSERT_TRUE(id.ok());
  const TpuId failed = cluster.chip_at(0, Coord{{0, 0, 0}});
  cluster.set_state(failed, ChipState::kFailed);
  alloc.release(id.value());
  EXPECT_EQ(cluster.state(failed), ChipState::kFailed);
}

TEST(Allocator, FirstFitFindsSpace) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 3}}).ok());
  // 4x4x2 no longer fits in rack 0 but fits in rack 1.
  const auto id = alloc.allocate(Shape{{4, 4, 2}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(alloc.slice(id.value())->rack, 1);
  // 4x4x1 still fits in rack 0's remaining z=3 layer.
  const auto id2 = alloc.allocate(Shape{{4, 4, 1}});
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(alloc.slice(id2.value())->rack, 0);
}

TEST(Allocator, AllocationExhaustion) {
  ClusterConfig config;
  config.racks = 1;
  TpuCluster cluster{config};
  SliceAllocator alloc{cluster};
  ASSERT_TRUE(alloc.allocate(Shape{{4, 4, 4}}).ok());
  EXPECT_FALSE(alloc.allocate(Shape{{1, 1, 1}}).ok());
}

TEST(Allocator, FragmentationReportAccountsFreeAndPlaceable) {
  ClusterConfig config;
  config.racks = 2;
  TpuCluster cluster{config};
  SliceAllocator alloc{cluster};

  // Empty cluster: everything free, everything placeable, no stranding.
  FragmentationReport r = alloc.fragmentation();
  EXPECT_EQ(r.total_free, 128);
  EXPECT_EQ(r.largest_volume, 64);
  EXPECT_EQ(r.placeable_sum, 128);
  EXPECT_DOUBLE_EQ(r.stranding(), 0.0);

  // Rack 0: z layers 0..2 allocated, z=3 free -> the free layer is exactly
  // one placeable 4x4x1.
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 3}}).ok());
  r = alloc.fragmentation();
  EXPECT_EQ(r.racks[0].free_chips, 16);
  EXPECT_EQ(r.racks[0].largest_volume, 16);
  EXPECT_EQ(r.racks[0].largest_shape, (Shape{{4, 4, 1}}));
  EXPECT_EQ(r.total_free, 16 + 64);
  EXPECT_EQ(r.placeable_sum, 16 + 64);
  EXPECT_DOUBLE_EQ(r.stranding(), 0.0);

  // Rack 1: fail the corner chip.  63 chips are free but the largest free
  // cuboid is 48 -- 15 free chips are stranded.
  cluster.set_state(cluster.chip_at(1, Coord{{0, 0, 0}}), ChipState::kFailed);
  r = alloc.fragmentation();
  EXPECT_EQ(r.racks[1].free_chips, 63);
  EXPECT_EQ(r.racks[1].largest_volume, 48);
  EXPECT_EQ(r.total_free, 16 + 63);
  EXPECT_EQ(r.placeable_sum, 16 + 48);
  EXPECT_GT(r.stranding(), 0.0);
  EXPECT_DOUBLE_EQ(r.stranding(), 1.0 - (16.0 + 48.0) / (16.0 + 63.0));
  std::int32_t free_sum = 0;
  for (RackId rack = 0; rack < config.racks; ++rack) free_sum += alloc.free_in_rack(rack);
  EXPECT_EQ(free_sum, r.total_free);
}

// allocate()'s documented total order is a pure function of the chip-state
// multiset: two allocators whose racks hold identical free/allocated/failed
// sets place the next slice identically, regardless of the alloc/release
// history that produced those sets.
TEST(Allocator, PlacementIsInvariantToAllocationHistory) {
  ClusterConfig config;
  config.racks = 3;

  // History A: place in racks 0 and 1, then release the rack-1 slice.
  TpuCluster ca{config};
  SliceAllocator a{ca};
  ASSERT_TRUE(a.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}).ok());
  const auto tmp_a = a.allocate_at(1, Coord{{0, 0, 0}}, Shape{{2, 2, 2}});
  ASSERT_TRUE(tmp_a.ok());
  a.release(tmp_a.value());

  // History B: same final state via the opposite order (and an extra
  // alloc/release pair in rack 2).
  TpuCluster cb{config};
  SliceAllocator b{cb};
  const auto tmp_b = b.allocate_at(1, Coord{{0, 0, 0}}, Shape{{2, 2, 2}});
  ASSERT_TRUE(tmp_b.ok());
  const auto tmp_b2 = b.allocate_at(2, Coord{{1, 1, 1}}, Shape{{2, 2, 1}});
  ASSERT_TRUE(tmp_b2.ok());
  ASSERT_TRUE(b.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}).ok());
  b.release(tmp_b.value());
  b.release(tmp_b2.value());

  for (TpuId chip = 0; chip < ca.chip_count(); ++chip) {
    ASSERT_EQ(ca.state(chip), cb.state(chip)) << "histories diverged at " << chip;
  }

  // The next placements must now coincide exactly, shape by shape.
  for (const Shape shape :
       {Shape{{4, 4, 1}}, Shape{{2, 2, 2}}, Shape{{4, 2, 1}}, Shape{{1, 1, 1}}}) {
    const auto ia = a.allocate(shape);
    const auto ib = b.allocate(shape);
    ASSERT_EQ(ia.ok(), ib.ok());
    if (!ia.ok()) continue;
    const Slice* sa = a.slice(ia.value());
    const Slice* sb = b.slice(ib.value());
    EXPECT_EQ(sa->rack, sb->rack) << shape.extent[0];
    EXPECT_EQ(sa->offset, sb->offset);
    EXPECT_EQ(sa->shape, sb->shape);
  }
}

TEST(Figure5, PackingMatchesPaper) {
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto packing = pack_figure5(alloc);
  ASSERT_TRUE(packing.ok()) << packing.error().message;
  const auto& p = packing.value();
  EXPECT_EQ(alloc.slice(p.slice1)->shape, (Shape{{4, 2, 1}}));
  EXPECT_EQ(alloc.slice(p.slice2)->shape, (Shape{{4, 2, 1}}));
  EXPECT_EQ(alloc.slice(p.slice3)->shape, (Shape{{4, 4, 1}}));
  EXPECT_EQ(alloc.slice(p.slice4)->shape, (Shape{{4, 4, 2}}));
  // The rack is exactly full.
  EXPECT_EQ(cluster.chips_in_state(ChipState::kAllocated).size(), 64u);
  EXPECT_TRUE(cluster.free_chips_in_rack(0).empty());
}

}  // namespace
}  // namespace lp::topo
