// Tests for the AllGather / AllReduce / Broadcast schedules and the
// crosstalk model.
#include <gtest/gtest.h>

#include "collective/extra_schedules.hpp"
#include "phys/crosstalk.hpp"
#include "phys/link_budget.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace lp {
namespace {

using coll::Interconnect;
using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::TpuCluster;

class Schedules : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  coll::CostParams params_;
  Slice slice1_{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  Slice slice3_{1, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  DataSize n_ = DataSize::mib(64);
};

TEST_F(Schedules, AllGatherMirrorsReduceScatter) {
  const auto rs = coll::build_reduce_scatter_schedule(
      cluster_, slice3_, n_, Interconnect::kElectrical, params_);
  const auto ag = coll::build_all_gather_schedule(cluster_, slice3_, n_,
                                                  Interconnect::kElectrical, params_);
  EXPECT_EQ(ag.phases.size(), rs.phases.size());
  EXPECT_NEAR(ag.total_bytes().to_bytes(), rs.total_bytes().to_bytes(), 1.0);
  // First gather phase moves the small shards (reverse order).
  ASSERT_FALSE(ag.phases.empty());
  EXPECT_LT(ag.phases.front().transfers[0].bytes.to_bytes(),
            rs.phases.front().transfers[0].bytes.to_bytes());
}

TEST_F(Schedules, AllGatherOpticalReconfigsOncePerStage) {
  const auto ag = coll::build_all_gather_schedule(cluster_, slice3_, n_,
                                                  Interconnect::kOptical, params_);
  int reconfigs = 0;
  for (const auto& p : ag.phases) {
    if (p.pre_delay > Duration::zero()) ++reconfigs;
  }
  EXPECT_EQ(reconfigs, 2);
  // And the first phase of the schedule carries one.
  EXPECT_GT(ag.phases.front().pre_delay.to_seconds(), 0.0);
}

TEST_F(Schedules, AllReduceMeasuredMatchesAnalytic) {
  const auto schedule = coll::build_all_reduce_schedule(
      cluster_, slice1_, n_, Interconnect::kElectrical, params_);
  const sim::FlowSimulator fsim{cluster_.dim_bandwidth()};
  const auto run = fsim.run(schedule);
  const auto plan = coll::build_plan(slice1_, cluster_.config().rack_shape);
  const auto cost =
      coll::all_reduce_cost(plan, n_, Interconnect::kElectrical, params_);
  EXPECT_NEAR(run.total.to_seconds(), cost.beta_time.to_seconds(), 1e-9);
}

TEST_F(Schedules, AllReduceOpticalKeepsCircuitsUpAcrossHalves) {
  const auto schedule = coll::build_all_reduce_schedule(
      cluster_, slice3_, n_, Interconnect::kOptical, params_);
  Duration reconfig = Duration::zero();
  for (const auto& p : schedule.phases) reconfig += p.pre_delay;
  // Two stages, circuits persist into the gather: 2 x r, not 4 x r.
  EXPECT_NEAR(reconfig.to_micros(), 2 * 3.7, 1e-6);
}

TEST_F(Schedules, BroadcastPipelineStructure) {
  const unsigned chunks = 4;
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, chunks, Interconnect::kElectrical, params_);
  // p=8 ring: p-1 + chunks-1 = 10 phases.
  EXPECT_EQ(schedule.phases.size(), 10u);
  // Total bytes: every non-root edge (p-1 of them) carries the whole buffer.
  EXPECT_NEAR(schedule.total_bytes().to_bytes(), 7.0 * n_.to_bytes(), 1.0);
  // Middle phases have multiple edges active (pipelining).
  std::size_t peak = 0;
  for (const auto& p : schedule.phases) peak = std::max(peak, p.transfers.size());
  EXPECT_GE(peak, 3u);
}

TEST_F(Schedules, BroadcastPipeliningBeatsStoreAndForward) {
  const sim::FlowSimulator fsim{cluster_.dim_bandwidth()};
  const auto pipelined = fsim.run(coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 16, Interconnect::kElectrical, params_));
  const auto store_fwd = fsim.run(coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 1, Interconnect::kElectrical, params_));
  EXPECT_LT(pipelined.total.to_seconds(), store_fwd.total.to_seconds() / 2.0);
}

TEST_F(Schedules, BroadcastOpticalPaysOneReconfig) {
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 4, Interconnect::kOptical, params_);
  Duration reconfig = Duration::zero();
  for (const auto& p : schedule.phases) reconfig += p.pre_delay;
  EXPECT_NEAR(reconfig.to_micros(), 3.7, 1e-6);
}

TEST_F(Schedules, BroadcastZeroChunksEmpty) {
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 0, Interconnect::kElectrical, params_);
  EXPECT_TRUE(schedule.phases.empty());
}

// --- Crosstalk ---------------------------------------------------------------

TEST(Crosstalk, AggregateScalesLinearly) {
  const phys::CrosstalkModel model;
  EXPECT_NEAR(model.aggregate_ratio(1), 10e-3 * 0.316, 1e-4);  // 10^-2.5
  EXPECT_NEAR(model.aggregate_ratio(10), 10 * model.aggregate_ratio(1), 1e-12);
}

TEST(Crosstalk, PenaltiesOrdered) {
  const phys::CrosstalkModel model;
  for (unsigned k : {1u, 8u, 24u}) {
    EXPECT_GT(model.incoherent_penalty(k).value(), 0.0);
    EXPECT_GT(model.coherent_penalty(k).value(), model.incoherent_penalty(k).value())
        << "coherent beating is the worst case";
  }
  EXPECT_LT(model.incoherent_penalty(24).value(), 0.5)
      << "25 dB extinction keeps 24-switch paths under half a dB";
}

TEST(Crosstalk, PenaltyMonotoneInTraversals) {
  const phys::CrosstalkModel model;
  double prev = 0.0;
  for (unsigned k = 0; k < 100; k += 10) {
    const double p = model.incoherent_penalty(k).value();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Crosstalk, MaxTraversalsInvertsPenalty) {
  const phys::CrosstalkModel model;
  const unsigned k = model.max_traversals(Decibel::db(0.5));
  EXPECT_LE(model.incoherent_penalty(k).value(), 0.5 + 1e-9);
  EXPECT_GT(model.incoherent_penalty(k + 2).value(), 0.5);
}

TEST(Crosstalk, BudgetChargesIncoherentPenalty) {
  const phys::LinkBudget budget;
  phys::CircuitProfile with, without;
  with.mzi_traversals = 24;
  without.mzi_traversals = 0;
  const auto a = budget.evaluate(with);
  const auto b = budget.evaluate(without);
  EXPECT_GT(a.crosstalk_penalty.value(), 0.0);
  EXPECT_NEAR(a.crosstalk_penalty.value(),
              phys::CrosstalkModel{}.incoherent_penalty(24).value(), 1e-12);
  EXPECT_EQ(b.crosstalk_penalty.value(), 0.0);
}

TEST(Crosstalk, PoorExtinctionBreaksLongPaths) {
  phys::CrosstalkParams params;
  params.extinction = Decibel::db(10.0);  // bad switch
  const phys::CrosstalkModel model{params};
  EXPECT_GT(model.incoherent_penalty(9).value(), 3.0);
  EXPECT_GE(model.coherent_penalty(25).value(), 1e8) << "closed form collapses";
}

}  // namespace
}  // namespace lp
