// Tests for the AllGather / AllReduce / Broadcast schedules, the tree /
// halving group schedules on arbitrary survivor sets, and the crosstalk
// model.
#include <gtest/gtest.h>

#include <set>

#include "collective/extra_schedules.hpp"
#include "collective/group_schedules.hpp"
#include "phys/crosstalk.hpp"
#include "phys/link_budget.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace lp {
namespace {

using coll::Interconnect;
using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::TpuCluster;

class Schedules : public ::testing::Test {
 protected:
  TpuCluster cluster_;
  coll::CostParams params_;
  Slice slice1_{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};
  Slice slice3_{1, 0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}}};
  DataSize n_ = DataSize::mib(64);
};

TEST_F(Schedules, AllGatherMirrorsReduceScatter) {
  const auto rs = coll::build_reduce_scatter_schedule(
      cluster_, slice3_, n_, Interconnect::kElectrical, params_);
  const auto ag = coll::build_all_gather_schedule(cluster_, slice3_, n_,
                                                  Interconnect::kElectrical, params_);
  EXPECT_EQ(ag.phases.size(), rs.phases.size());
  EXPECT_NEAR(ag.total_bytes().to_bytes(), rs.total_bytes().to_bytes(), 1.0);
  // First gather phase moves the small shards (reverse order).
  ASSERT_FALSE(ag.phases.empty());
  EXPECT_LT(ag.phases.front().transfers[0].bytes.to_bytes(),
            rs.phases.front().transfers[0].bytes.to_bytes());
}

TEST_F(Schedules, AllGatherOpticalReconfigsOncePerStage) {
  const auto ag = coll::build_all_gather_schedule(cluster_, slice3_, n_,
                                                  Interconnect::kOptical, params_);
  int reconfigs = 0;
  for (const auto& p : ag.phases) {
    if (p.pre_delay > Duration::zero()) ++reconfigs;
  }
  EXPECT_EQ(reconfigs, 2);
  // And the first phase of the schedule carries one.
  EXPECT_GT(ag.phases.front().pre_delay.to_seconds(), 0.0);
}

TEST_F(Schedules, AllReduceMeasuredMatchesAnalytic) {
  const auto schedule = coll::build_all_reduce_schedule(
      cluster_, slice1_, n_, Interconnect::kElectrical, params_);
  const sim::FlowSimulator fsim{cluster_.dim_bandwidth()};
  const auto run = fsim.run(schedule);
  const auto plan = coll::build_plan(slice1_, cluster_.config().rack_shape);
  const auto cost =
      coll::all_reduce_cost(plan, n_, Interconnect::kElectrical, params_);
  EXPECT_NEAR(run.total.to_seconds(), cost.beta_time.to_seconds(), 1e-9);
}

TEST_F(Schedules, AllReduceOpticalKeepsCircuitsUpAcrossHalves) {
  const auto schedule = coll::build_all_reduce_schedule(
      cluster_, slice3_, n_, Interconnect::kOptical, params_);
  Duration reconfig = Duration::zero();
  for (const auto& p : schedule.phases) reconfig += p.pre_delay;
  // Two stages, circuits persist into the gather: 2 x r, not 4 x r.
  EXPECT_NEAR(reconfig.to_micros(), 2 * 3.7, 1e-6);
}

TEST_F(Schedules, BroadcastPipelineStructure) {
  const unsigned chunks = 4;
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, chunks, Interconnect::kElectrical, params_);
  // p=8 ring: p-1 + chunks-1 = 10 phases.
  EXPECT_EQ(schedule.phases.size(), 10u);
  // Total bytes: every non-root edge (p-1 of them) carries the whole buffer.
  EXPECT_NEAR(schedule.total_bytes().to_bytes(), 7.0 * n_.to_bytes(), 1.0);
  // Middle phases have multiple edges active (pipelining).
  std::size_t peak = 0;
  for (const auto& p : schedule.phases) peak = std::max(peak, p.transfers.size());
  EXPECT_GE(peak, 3u);
}

TEST_F(Schedules, BroadcastPipeliningBeatsStoreAndForward) {
  const sim::FlowSimulator fsim{cluster_.dim_bandwidth()};
  const auto pipelined = fsim.run(coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 16, Interconnect::kElectrical, params_));
  const auto store_fwd = fsim.run(coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 1, Interconnect::kElectrical, params_));
  EXPECT_LT(pipelined.total.to_seconds(), store_fwd.total.to_seconds() / 2.0);
}

TEST_F(Schedules, BroadcastOpticalPaysOneReconfig) {
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 4, Interconnect::kOptical, params_);
  Duration reconfig = Duration::zero();
  for (const auto& p : schedule.phases) reconfig += p.pre_delay;
  EXPECT_NEAR(reconfig.to_micros(), 3.7, 1e-6);
}

TEST_F(Schedules, BroadcastZeroChunksEmpty) {
  const auto schedule = coll::build_broadcast_schedule(
      cluster_, slice1_, n_, 0, Interconnect::kElectrical, params_);
  EXPECT_TRUE(schedule.phases.empty());
}

// --- Group schedules on non-power-of-two survivor sets -----------------------
//
// The autotuner's tree/halving candidates must stay correct on *whatever
// chips survive* — the same contract build_elastic_ring_schedule honors.
// These tests pin the phase structure and byte conservation on m = 7
// (fold + power-of-two core) and on the degenerate 2- and 3-member groups
// a badly shrunk ring can reach.

class GroupSchedules : public ::testing::Test {
 protected:
  static std::vector<topo::TpuId> survivors(std::size_t m) {
    // Deliberately non-contiguous ids: builders must index the member
    // list, never assume dense ranks.
    std::vector<topo::TpuId> ids;
    for (std::size_t i = 0; i < m; ++i) ids.push_back(static_cast<topo::TpuId>(40 + 3 * i));
    return ids;
  }

  static void expect_transfers_stay_in_group(const coll::Schedule& s,
                                             const std::vector<topo::TpuId>& members) {
    const std::set<topo::TpuId> in_group{members.begin(), members.end()};
    for (const auto& phase : s.phases) {
      for (const auto& t : phase.transfers) {
        EXPECT_TRUE(in_group.count(t.src)) << "src " << t.src << " not a survivor";
        EXPECT_TRUE(in_group.count(t.dst)) << "dst " << t.dst << " not a survivor";
        EXPECT_NE(t.src, t.dst);
        EXPECT_TRUE(t.is_optical());
      }
    }
  }

  Bandwidth rate_ = Bandwidth::gBps(37.5);  // 1-lambda elastic-bridge rate
  Duration r_ = Duration::micros(3.7);
  DataSize n_ = DataSize::mib(8);
};

TEST_F(GroupSchedules, TreeBroadcastNonPowerOfTwoStructure) {
  const auto members = survivors(7);
  const auto s = coll::build_tree_broadcast_schedule(members, n_, rate_, r_);
  ASSERT_EQ(s.phases.size(), 3u);  // ceil(log2 7)
  // Informed set doubles (saturating): 1, 2, then 3 senders into the tail.
  EXPECT_EQ(s.phases[0].transfers.size(), 1u);
  EXPECT_EQ(s.phases[1].transfers.size(), 2u);
  EXPECT_EQ(s.phases[2].transfers.size(), 3u);
  // Fresh pairing every phase: each one pays the reconfiguration.
  for (const auto& p : s.phases) EXPECT_EQ(p.pre_delay, r_);
  // Byte conservation: every non-root member receives the buffer once.
  EXPECT_NEAR(s.total_bytes().to_bytes(), 6.0 * n_.to_bytes(), 1.0);
  expect_transfers_stay_in_group(s, members);
}

TEST_F(GroupSchedules, HalvingReduceScatterFoldsExtras) {
  // m = 7 = 2^2 + 3: one fold pre-phase (3 extras push full buffers onto
  // the core), then K = 2 exchange phases of n/2 and n/4.
  const auto members = survivors(7);
  const auto s = coll::build_halving_reduce_scatter_schedule(members, n_, rate_, r_);
  ASSERT_EQ(s.phases.size(), 3u);
  EXPECT_EQ(s.phases[0].transfers.size(), 3u);  // fold: the extras
  EXPECT_EQ(s.phases[1].transfers.size(), 4u);  // pairwise exchange on the core
  EXPECT_EQ(s.phases[2].transfers.size(), 4u);
  EXPECT_NEAR(s.phases[0].transfers[0].bytes.to_bytes(), n_.to_bytes(), 1.0);
  EXPECT_NEAR(s.phases[1].transfers[0].bytes.to_bytes(), n_.to_bytes() / 2.0, 1.0);
  EXPECT_NEAR(s.phases[2].transfers[0].bytes.to_bytes(), n_.to_bytes() / 4.0, 1.0);
  // 3n fold + 4(n/2) + 4(n/4) = 6n = (m-1) n.
  EXPECT_NEAR(s.total_bytes().to_bytes(), 6.0 * n_.to_bytes(), 1.0);
  expect_transfers_stay_in_group(s, members);
}

TEST_F(GroupSchedules, AllReduceAlgorithmsConserveBytes) {
  // Every AllReduce lowering moves exactly 2 (m-1) n bytes in total —
  // ring, tree, and halving-doubling agree on any survivor count.
  for (const std::size_t m : {2u, 3u, 5u, 7u, 12u}) {
    const auto members = survivors(m);
    const double want = 2.0 * static_cast<double>(m - 1) * n_.to_bytes();
    const auto ring = coll::build_elastic_ring_schedule(members, n_, rate_, r_);
    const auto tree = coll::build_tree_all_reduce_schedule(members, n_, rate_, r_);
    const auto hd =
        coll::build_halving_doubling_all_reduce_schedule(members, n_, rate_, r_);
    EXPECT_NEAR(ring.total_bytes().to_bytes(), want, 1.0) << "ring m=" << m;
    EXPECT_NEAR(tree.total_bytes().to_bytes(), want, 1.0) << "tree m=" << m;
    EXPECT_NEAR(hd.total_bytes().to_bytes(), want, 1.0) << "hd m=" << m;
    expect_transfers_stay_in_group(tree, members);
    expect_transfers_stay_in_group(hd, members);
  }
}

TEST_F(GroupSchedules, DegenerateTwoAndThreeMemberGroups) {
  // m = 2: no fold, a single pairwise exchange (halving) or a single
  // full-buffer send (tree).
  const auto two = survivors(2);
  const auto rs2 = coll::build_halving_reduce_scatter_schedule(two, n_, rate_, r_);
  ASSERT_EQ(rs2.phases.size(), 1u);
  EXPECT_EQ(rs2.phases[0].transfers.size(), 2u);
  EXPECT_NEAR(rs2.total_bytes().to_bytes(), n_.to_bytes(), 1.0);
  const auto bc2 = coll::build_tree_broadcast_schedule(two, n_, rate_, r_);
  ASSERT_EQ(bc2.phases.size(), 1u);
  EXPECT_EQ(bc2.phases[0].transfers.size(), 1u);

  // m = 3 = 2^1 + 1: fold + one exchange phase.
  const auto three = survivors(3);
  const auto rs3 = coll::build_halving_reduce_scatter_schedule(three, n_, rate_, r_);
  ASSERT_EQ(rs3.phases.size(), 2u);
  EXPECT_EQ(rs3.phases[0].transfers.size(), 1u);
  EXPECT_EQ(rs3.phases[1].transfers.size(), 2u);
  EXPECT_NEAR(rs3.total_bytes().to_bytes(), 2.0 * n_.to_bytes(), 1.0);
  const auto ar3 = coll::build_halving_doubling_all_reduce_schedule(three, n_, rate_, r_);
  ASSERT_EQ(ar3.phases.size(), 4u);  // fold, exchange, exchange, unfold
  EXPECT_NEAR(ar3.total_bytes().to_bytes(), 4.0 * n_.to_bytes(), 1.0);

  // Fewer than two members: nothing to exchange.
  EXPECT_TRUE(coll::build_tree_broadcast_schedule(survivors(1), n_, rate_, r_)
                  .phases.empty());
  EXPECT_TRUE(coll::build_halving_doubling_all_reduce_schedule(survivors(0), n_, rate_, r_)
                  .phases.empty());
}

TEST_F(GroupSchedules, GatherMirrorsScatterOnSurvivorSets) {
  // The doubling AllGather is the halving ReduceScatter run backwards:
  // same phase count, same total bytes, small shards first.
  for (const std::size_t m : {3u, 7u, 12u}) {
    const auto members = survivors(m);
    const auto rs = coll::build_halving_reduce_scatter_schedule(members, n_, rate_, r_);
    const auto ag = coll::build_doubling_all_gather_schedule(members, n_, rate_, r_);
    EXPECT_EQ(ag.phases.size(), rs.phases.size()) << "m=" << m;
    EXPECT_NEAR(ag.total_bytes().to_bytes(), rs.total_bytes().to_bytes(), 1.0);
    ASSERT_FALSE(ag.phases.empty());
    EXPECT_LT(ag.phases.front().transfers[0].bytes.to_bytes(),
              ag.phases.back().transfers[0].bytes.to_bytes());
  }
}

// --- Crosstalk ---------------------------------------------------------------

TEST(Crosstalk, AggregateScalesLinearly) {
  const phys::CrosstalkModel model;
  EXPECT_NEAR(model.aggregate_ratio(1), 10e-3 * 0.316, 1e-4);  // 10^-2.5
  EXPECT_NEAR(model.aggregate_ratio(10), 10 * model.aggregate_ratio(1), 1e-12);
}

TEST(Crosstalk, PenaltiesOrdered) {
  const phys::CrosstalkModel model;
  for (unsigned k : {1u, 8u, 24u}) {
    EXPECT_GT(model.incoherent_penalty(k).value(), 0.0);
    EXPECT_GT(model.coherent_penalty(k).value(), model.incoherent_penalty(k).value())
        << "coherent beating is the worst case";
  }
  EXPECT_LT(model.incoherent_penalty(24).value(), 0.5)
      << "25 dB extinction keeps 24-switch paths under half a dB";
}

TEST(Crosstalk, PenaltyMonotoneInTraversals) {
  const phys::CrosstalkModel model;
  double prev = 0.0;
  for (unsigned k = 0; k < 100; k += 10) {
    const double p = model.incoherent_penalty(k).value();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Crosstalk, MaxTraversalsInvertsPenalty) {
  const phys::CrosstalkModel model;
  const unsigned k = model.max_traversals(Decibel::db(0.5));
  EXPECT_LE(model.incoherent_penalty(k).value(), 0.5 + 1e-9);
  EXPECT_GT(model.incoherent_penalty(k + 2).value(), 0.5);
}

TEST(Crosstalk, BudgetChargesIncoherentPenalty) {
  const phys::LinkBudget budget;
  phys::CircuitProfile with, without;
  with.mzi_traversals = 24;
  without.mzi_traversals = 0;
  const auto a = budget.evaluate(with);
  const auto b = budget.evaluate(without);
  EXPECT_GT(a.crosstalk_penalty.value(), 0.0);
  EXPECT_NEAR(a.crosstalk_penalty.value(),
              phys::CrosstalkModel{}.incoherent_penalty(24).value(), 1e-12);
  EXPECT_EQ(b.crosstalk_penalty.value(), 0.0);
}

TEST(Crosstalk, PoorExtinctionBreaksLongPaths) {
  phys::CrosstalkParams params;
  params.extinction = Decibel::db(10.0);  // bad switch
  const phys::CrosstalkModel model{params};
  EXPECT_GT(model.incoherent_penalty(9).value(), 3.0);
  EXPECT_GE(model.coherent_penalty(25).value(), 1e8) << "closed form collapses";
}

}  // namespace
}  // namespace lp
